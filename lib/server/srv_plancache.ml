(* Lens plan cache: sentinel-compiled parametric plans with structural
   re-binding, exact (value-keyed) fallback, LRU eviction, and
   catalog-mutation invalidation.

   The rebind machinery substitutes actual parameter values for the
   sentinel stand-ins everywhere a literal can land: algebra
   expressions, plan operators, SQL fragments (mapped on the AST and
   re-rendered to text), the carried source query, and the construct
   template.  Artifacts that cannot be mapped structurally — a join
   fragment's pre-rendered SQL text, a pushed path, a dependent-join
   closure — make the shape [Unrebindable]; such shapes are poisoned
   and served from exact entries instead. *)

exception Unrebindable of string

(* A substitution: sentinel value -> actual value, plus the rendered
   form of each pair for string-typed landing sites (attribute
   literals, text matches, LIKE patterns). *)
type subst = {
  sb_vals : (Value.t * Value.t) list;
  sb_strs : (string * string) list;
}

let rendering = function
  | Value.String s -> s
  | v -> Value.to_string v

let make_subst pairs =
  {
    sb_vals = pairs;
    sb_strs = List.map (fun (s, a) -> (rendering s, rendering a)) pairs;
  }

let map_value sb v =
  match List.find_opt (fun (s, _) -> s = v) sb.sb_vals with
  | Some (_, a) -> a
  | None -> v

let map_str sb s =
  match List.assoc_opt s sb.sb_strs with Some a -> a | None -> s

let map_int sb i =
  match
    List.find_opt (fun (s, _) -> s = Value.Int i) sb.sb_vals
  with
  | Some (_, Value.Int a) -> a
  | _ -> i

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
  in
  nn = 0 || go 0

(* Sentinel text leaking into an artifact we cannot map structurally
   means the plan is value-dependent in an opaque place. *)
let leak_check sb what s =
  if List.exists (fun (tok, _) -> contains_sub s tok) sb.sb_strs then
    raise (Unrebindable (what ^ " embeds a parameter"))

(* {2 Mappers} *)

let rec map_expr sb (e : Alg_expr.t) : Alg_expr.t =
  match e with
  | Alg_expr.Var _ -> e
  | Const v -> Const (map_value sb v)
  | Child (e1, l) -> Child (map_expr sb e1, l)
  | Attr (e1, a) -> Attr (map_expr sb e1, a)
  | Text e1 -> Text (map_expr sb e1)
  | Label e1 -> Label (map_expr sb e1)
  | Binop (op, a, b) -> Binop (op, map_expr sb a, map_expr sb b)
  | Not e1 -> Not (map_expr sb e1)
  | Neg e1 -> Neg (map_expr sb e1)
  | Call (f, es) -> Call (f, List.map (map_expr sb) es)
  | Like (e1, pat) -> Like (map_expr sb e1, map_str sb pat)
  | Is_null e1 -> Is_null (map_expr sb e1)

let rec map_sql sb (e : Sql_ast.expr) : Sql_ast.expr =
  match e with
  | Sql_ast.Col _ -> e
  | Lit v -> Lit (map_value sb v)
  | Unop (op, a) -> Unop (op, map_sql sb a)
  | Binop (op, a, b) -> Binop (op, map_sql sb a, map_sql sb b)
  | Fncall (f, es) -> Fncall (f, List.map (map_sql sb) es)
  | Like (a, p) -> Like (map_sql sb a, map_str sb p)
  | In_list (a, es) -> In_list (map_sql sb a, List.map (map_sql sb) es)
  | Between (a, b, c) -> Between (map_sql sb a, map_sql sb b, map_sql sb c)
  | Is_null a -> Is_null (map_sql sb a)
  | Is_not_null a -> Is_not_null (map_sql sb a)

let map_sql_item sb (it : Sql_ast.select_item) =
  match it with
  | Sql_ast.Star | Sql_ast.Qualified_star _ -> it
  | Expr_item (e, al) -> Expr_item (map_sql sb e, al)
  | Agg_item (f, eo, al) -> Agg_item (f, Option.map (map_sql sb) eo, al)

let rec map_sql_from sb (f : Sql_ast.from_clause) =
  match f with
  | Sql_ast.From_table _ -> f
  | From_join (l, k, tr, on) -> From_join (map_sql_from sb l, k, tr, map_sql sb on)

let map_select sb (s : Sql_ast.select) =
  {
    s with
    Sql_ast.items = List.map (map_sql_item sb) s.Sql_ast.items;
    from = Option.map (map_sql_from sb) s.Sql_ast.from;
    where = Option.map (map_sql sb) s.Sql_ast.where;
    group_by = List.map (map_sql sb) s.Sql_ast.group_by;
    having = Option.map (map_sql sb) s.Sql_ast.having;
    order_by =
      List.map
        (fun (o : Sql_ast.order_item) ->
          { o with Sql_ast.order_expr = map_sql sb o.Sql_ast.order_expr })
        s.Sql_ast.order_by;
    limit = Option.map (map_int sb) s.Sql_ast.limit;
  }

let rec map_pattern sb (p : Xq_ast.pattern) =
  {
    p with
    Xq_ast.attrs =
      List.map
        (fun (n, ap) ->
          ( n,
            match ap with
            | Xq_ast.A_var _ -> ap
            | Xq_ast.A_lit s -> Xq_ast.A_lit (map_str sb s) ))
        p.Xq_ast.attrs;
    children = List.map (map_child sb) p.Xq_ast.children;
  }

and map_child sb (c : Xq_ast.child_pattern) =
  match c with
  | Xq_ast.P_element p -> Xq_ast.P_element (map_pattern sb p)
  | P_var _ -> c
  | P_text s -> P_text (map_str sb s)

let rec map_tpl sb (t : Xq_ast.template) =
  match t with
  | Xq_ast.Tpl_element (tag, attrs, kids) ->
    Xq_ast.Tpl_element
      ( tag,
        List.map (fun (n, ta) -> (n, map_tattr sb ta)) attrs,
        List.map (map_tpl sb) kids )
  | Tpl_var _ -> t
  | Tpl_text s -> Tpl_text (map_str sb s)
  | Tpl_expr e -> Tpl_expr (map_expr sb e)
  | Tpl_subquery q -> Tpl_subquery (map_query sb q)
  | Tpl_agg (k, q) -> Tpl_agg (k, map_query sb q)

and map_tattr sb (ta : Xq_ast.tattr) =
  match ta with
  | Xq_ast.TA_var _ -> ta
  | TA_lit s -> TA_lit (map_str sb s)
  | TA_expr e -> TA_expr (map_expr sb e)

and map_query sb (q : Xq_ast.query) =
  {
    Xq_ast.clauses =
      List.map
        (fun (c : Xq_ast.clause) ->
          leak_check sb "clause source" c.Xq_ast.clause_source;
          { c with Xq_ast.clause_pattern = map_pattern sb c.Xq_ast.clause_pattern })
        q.Xq_ast.clauses;
    conditions = List.map (map_expr sb) q.Xq_ast.conditions;
    construct = map_tpl sb q.Xq_ast.construct;
    order_by =
      List.map (fun (e, asc) -> (map_expr sb e, asc)) q.Xq_ast.order_by;
    limit = Option.map (map_int sb) q.Xq_ast.limit;
  }

let map_agg sb (a : Alg_plan.agg) =
  match a with
  | Alg_plan.A_count -> a
  | A_count_expr e -> A_count_expr (map_expr sb e)
  | A_sum e -> A_sum (map_expr sb e)
  | A_avg e -> A_avg (map_expr sb e)
  | A_min e -> A_min (map_expr sb e)
  | A_max e -> A_max (map_expr sb e)
  | A_collect e -> A_collect (map_expr sb e)

let rec map_ptpl sb (t : Alg_plan.template) =
  match t with
  | Alg_plan.T_node (tag, attrs, kids) ->
    Alg_plan.T_node
      ( tag,
        List.map (fun (n, e) -> (n, map_expr sb e)) attrs,
        List.map (map_ptpl sb) kids )
  | T_value e -> T_value (map_expr sb e)
  | T_tree e -> T_tree (map_expr sb e)
  | T_splice e -> T_splice (map_expr sb e)

let rec map_plan sb (p : Alg_plan.t) : Alg_plan.t =
  match p with
  | Alg_plan.Scan _ | Const_envs _ -> p
  | Select (i, e) -> Select (map_plan sb i, map_expr sb e)
  | Project (i, vs) -> Project (map_plan sb i, vs)
  | Rename (i, rs) -> Rename (map_plan sb i, rs)
  | Extend (i, v, e) -> Extend (map_plan sb i, v, map_expr sb e)
  | Extend_tree (i, v, e) -> Extend_tree (map_plan sb i, v, map_expr sb e)
  | Nl_join { left; right; pred } ->
    Nl_join
      {
        left = map_plan sb left;
        right = map_plan sb right;
        pred = Option.map (map_expr sb) pred;
      }
  | Hash_join { left; right; left_key; right_key; residual } ->
    Hash_join
      {
        left = map_plan sb left;
        right = map_plan sb right;
        left_key = map_expr sb left_key;
        right_key = map_expr sb right_key;
        residual = Option.map (map_expr sb) residual;
      }
  | Merge_join { left; right; left_key; right_key } ->
    Merge_join
      {
        left = map_plan sb left;
        right = map_plan sb right;
        left_key = map_expr sb left_key;
        right_key = map_expr sb right_key;
      }
  | Dep_join { label; _ } ->
    raise (Unrebindable ("dependent join " ^ label ^ " carries a closure"))
  | Sort (i, specs) ->
    Sort
      ( map_plan sb i,
        List.map
          (fun (s : Alg_plan.sort_spec) ->
            { s with Alg_plan.sort_key = map_expr sb s.Alg_plan.sort_key })
          specs )
  | Distinct i -> Distinct (map_plan sb i)
  | Group { input; keys; aggs } ->
    Group
      {
        input = map_plan sb input;
        keys = List.map (fun (v, e) -> (v, map_expr sb e)) keys;
        aggs = List.map (fun (v, a) -> (v, map_agg sb a)) aggs;
      }
  | Union (a, b) -> Union (map_plan sb a, map_plan sb b)
  | Outer_union (a, b) -> Outer_union (map_plan sb a, map_plan sb b)
  | Navigate { input; var; path; out } ->
    leak_check sb "pushed path" (Xml_path.to_string path);
    Navigate { input = map_plan sb input; var; path; out }
  | Unnest { input; var; label; out } ->
    Unnest { input = map_plan sb input; var; label; out }
  | Construct { input; binding; template } ->
    Construct
      { input = map_plan sb input; binding; template = map_ptpl sb template }
  | Limit (i, n) -> Limit (map_plan sb i, map_int sb n)

let map_fragment sb (f : Med_sqlgen.fragment) =
  let sql = map_select sb f.Med_sqlgen.sql in
  {
    f with
    Med_sqlgen.sql;
    sql_text = Sql_print.select_to_string sql;
    pushed_conditions = List.map (map_expr sb) f.Med_sqlgen.pushed_conditions;
  }

let map_access sb (id, (a : Med_planner.access)) =
  ( id,
    match a with
    | Med_planner.A_sql { source_name; export; fragment; pattern } ->
      Med_planner.A_sql
        {
          source_name;
          export;
          fragment = map_fragment sb fragment;
          pattern = map_pattern sb pattern;
        }
    | A_sql_join { source_name; fragment; exports } ->
      leak_check sb "join fragment" fragment.Med_sqlgen.jf_sql_text;
      A_sql_join
        {
          source_name;
          fragment =
            {
              fragment with
              Med_sqlgen.jf_pushed_conditions =
                List.map (map_expr sb)
                  fragment.Med_sqlgen.jf_pushed_conditions;
            };
          exports;
        }
    | A_path { source_name; export; path; pattern } ->
      leak_check sb "pushed path" (Xml_path.to_string path);
      A_path { source_name; export; path; pattern = map_pattern sb pattern }
    | A_match { source_name; export; pattern } ->
      A_match { source_name; export; pattern = map_pattern sb pattern }
    | A_view { view; pattern } ->
      A_view { view; pattern = map_pattern sb pattern }
    | A_sql_bind { source_name; export; fragment; pattern; bind_driver;
                   bind_var; bind_col } ->
      (* The IN-list is computed at fetch time from the driver's rows,
         so only the underlying fragment carries parameter sentinels. *)
      A_sql_bind
        {
          source_name;
          export;
          fragment = map_fragment sb fragment;
          pattern = map_pattern sb pattern;
          bind_driver;
          bind_var;
          bind_col;
        } )

let map_compiled sb (c : Med_planner.compiled) =
  {
    Med_planner.plan = map_plan sb c.Med_planner.plan;
    accesses = List.map (map_access sb) c.Med_planner.accesses;
    construct = map_tpl sb c.Med_planner.construct;
    source_query = map_query sb c.Med_planner.source_query;
    residual_conditions =
      List.map (map_expr sb) c.Med_planner.residual_conditions;
    opt_info = c.Med_planner.opt_info;
  }

(* Structural equality; plans never carry closures here (Dep_join is
   rejected above), but compare defensively. *)
let compiled_equal a b = try a = b with Invalid_argument _ -> false

(* {2 The cache} *)

type kind =
  | Parametric of {
      compiled : Med_planner.compiled;  (* holds sentinels *)
      binds : (string * Value.t) list;  (* param name -> its sentinel *)
    }
  | Exact of Med_planner.compiled

type entry = {
  e_key : string;
  e_kind : kind;
  e_sources : string list;  (* transitive closure, for invalidation *)
  e_epoch : int;  (* stats epoch at compile time; stale plans re-optimize *)
  e_idx_epoch : int;
      (* index-registry epoch at compile time: plans optimized before an
         index appeared (or after one dropped) recompile so their access
         estimates see the current indexes *)
  mutable e_last_used : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  fallbacks : int;
}

type t = {
  cat : Med_catalog.t;
  cap : int;
  entries : (string, entry) Hashtbl.t;
  poisoned : (string, unit) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable fallbacks : int;
  m_hits : Obs_metrics.counter;
  m_misses : Obs_metrics.counter;
  m_evictions : Obs_metrics.counter;
  m_invalidations : Obs_metrics.counter;
  m_size : Obs_metrics.gauge;
}

let capacity t = t.cap
let size t = Hashtbl.length t.entries
let sync_size t = Obs_metrics.set_gauge t.m_size (float_of_int (size t))

let create ?(capacity = 32) cat =
  let t =
    {
      cat;
      cap = max 0 capacity;
      entries = Hashtbl.create 32;
      poisoned = Hashtbl.create 7;
      tick = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
      invalidations = 0;
      fallbacks = 0;
      m_hits = Obs_metrics.counter "srv.plancache.hits";
      m_misses = Obs_metrics.counter "srv.plancache.misses";
      m_evictions = Obs_metrics.counter "srv.plancache.evictions";
      m_invalidations = Obs_metrics.counter "srv.plancache.invalidations";
      m_size = Obs_metrics.gauge "srv.plancache.size";
    }
  in
  Med_catalog.on_mutation cat (fun name ->
      let victims =
        Hashtbl.fold
          (fun key e acc ->
            let hit =
              List.exists
                (fun s ->
                  s = name || String.starts_with ~prefix:(name ^ ".") s)
                e.e_sources
            in
            if hit then key :: acc else acc)
          t.entries []
      in
      List.iter (Hashtbl.remove t.entries) victims;
      t.invalidations <- t.invalidations + List.length victims;
      if victims <> [] then
        Obs_metrics.inc ~by:(List.length victims) t.m_invalidations;
      sync_size t);
  t

let invalidate t name =
  let before = size t in
  Med_catalog.notify_invalidation t.cat name;
  before - size t

let clear t =
  Hashtbl.reset t.entries;
  Hashtbl.reset t.poisoned;
  sync_size t

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    invalidations = t.invalidations;
    fallbacks = t.fallbacks;
  }

let touch t e =
  t.tick <- t.tick + 1;
  e.e_last_used <- t.tick

let note_hit t = t.hits <- t.hits + 1; Obs_metrics.inc t.m_hits
let note_miss t = t.misses <- t.misses + 1; Obs_metrics.inc t.m_misses

(* A plan compiled under an older statistics epoch may carry a join
   order the refreshed statistics would no longer choose; one compiled
   under another index epoch carries access estimates that ignore an
   index that has since been built (or trust one that was dropped).
   Drop it and recompile instead of silently reusing it. *)
let find_fresh t key =
  match Hashtbl.find_opt t.entries key with
  | Some e
    when e.e_epoch < Med_catalog.stats_epoch t.cat
         || e.e_idx_epoch <> Idx_manager.epoch () ->
    Hashtbl.remove t.entries key;
    t.invalidations <- t.invalidations + 1;
    Obs_metrics.inc t.m_invalidations;
    sync_size t;
    None
  | found -> found

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ e acc ->
        match acc with
        | Some best when best.e_last_used <= e.e_last_used -> acc
        | _ -> Some e)
      t.entries None
  in
  match victim with
  | None -> ()
  | Some e ->
    Hashtbl.remove t.entries e.e_key;
    t.evictions <- t.evictions + 1;
    Obs_metrics.inc t.m_evictions

let rec source_closure cat acc name =
  if List.mem name acc then acc
  else
    let acc = name :: acc in
    let deps = try Med_catalog.dependencies cat name with _ -> [] in
    List.fold_left (source_closure cat) acc deps

let sources_of t (c : Med_planner.compiled) =
  List.fold_left
    (fun acc (_, a) -> source_closure t.cat acc (Med_planner.access_target a))
    [] c.Med_planner.accesses

let store t key kind compiled =
  while t.cap > 0 && size t >= t.cap do
    evict_lru t
  done;
  let e =
    { e_key = key; e_kind = kind; e_sources = sources_of t compiled;
      e_epoch = Med_catalog.stats_epoch t.cat;
      e_idx_epoch = Idx_manager.epoch (); e_last_used = 0 }
  in
  touch t e;
  Hashtbl.replace t.entries key e;
  sync_size t

let compile_cold t lens query resolved =
  Med_planner.compile t.cat (Fe_lens.instantiate_values lens query resolved)

let subst_for binds resolved =
  make_subst
    (List.map (fun (name, sent) -> (sent, List.assoc name resolved)) binds)

(* Compile once against sentinels, rebind to the first valuation, and
   only admit the parametric entry when the rebound plan is structurally
   identical to the cold compile of that same valuation. *)
let attempt_parametric t lens query resolved cold =
  let rebindables = List.filter (fun (_, v) -> Fe_lens.rebindable v) resolved in
  let binds =
    List.mapi (fun i (n, v) -> (n, Fe_lens.sentinel_for i v)) rebindables
  in
  let sentinel_values =
    List.map
      (fun (n, v) ->
        match List.assoc_opt n binds with Some s -> (n, s) | None -> (n, v))
      resolved
  in
  match
    let q = Fe_lens.instantiate_values lens query sentinel_values in
    let compiled = Med_planner.compile t.cat q in
    let rebound = map_compiled (subst_for binds resolved) compiled in
    if compiled_equal rebound cold then Some (Parametric { compiled; binds })
    else None
  with
  | result -> result
  | exception Unrebindable _ -> None
  | exception Fe_lens.Lens_error _ -> None
  | exception Med_planner.Plan_error _ -> None

let lookup_exact t lens query args resolved =
  let key = Fe_lens.param_shape_exact lens query args in
  match find_fresh t key with
  | Some ({ e_kind = Exact c; _ } as e) ->
    touch t e;
    note_hit t;
    (c, true)
  | Some _ | None ->
    let cold = compile_cold t lens query resolved in
    note_miss t;
    store t key (Exact cold) cold;
    (cold, false)

let lookup t ~lens ~query ~args =
  let resolved = Fe_lens.resolve_args lens query args in
  if t.cap = 0 then (compile_cold t lens query resolved, false)
  else begin
    let shape = Fe_lens.param_shape lens query args in
    if Hashtbl.mem t.poisoned shape then lookup_exact t lens query args resolved
    else
      match find_fresh t shape with
      | Some ({ e_kind = Parametric { compiled; binds }; _ } as e) -> (
        match map_compiled (subst_for binds resolved) compiled with
        | rebound ->
          touch t e;
          note_hit t;
          (rebound, true)
        | exception Unrebindable _ ->
          (* Cannot happen for a verified entry, but stay safe. *)
          Hashtbl.remove t.entries shape;
          Hashtbl.replace t.poisoned shape ();
          t.fallbacks <- t.fallbacks + 1;
          lookup_exact t lens query args resolved)
      | Some _ | None -> (
        let cold = compile_cold t lens query resolved in
        note_miss t;
        match attempt_parametric t lens query resolved cold with
        | Some kind ->
          store t shape kind cold;
          (cold, false)
        | None ->
          Hashtbl.replace t.poisoned shape ();
          t.fallbacks <- t.fallbacks + 1;
          let key = Fe_lens.param_shape_exact lens query args in
          store t key (Exact cold) cold;
          (cold, false))
  end

let report t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "plan cache: size=%d/%d hits=%d misses=%d evictions=%d \
        invalidations=%d fallbacks=%d"
       (size t) t.cap t.hits t.misses t.evictions t.invalidations t.fallbacks);
  let entries =
    Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
    |> List.sort (fun a b -> compare b.e_last_used a.e_last_used)
  in
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "\n  %s %s  sources=%s"
           (match e.e_kind with
            | Parametric _ -> "param"
            | Exact _ -> "exact")
           e.e_key
           (String.concat "," (List.sort compare e.e_sources))))
    entries;
  Buffer.contents b
