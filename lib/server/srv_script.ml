(* Line-oriented scripts driving a concurrency server — the shared
   engine of [nimble_cli serve] and the repl's [\serve]. *)

type env = {
  sys : Nimble.t;
  print : string -> unit;
  mutable cfg : Srv_dispatch.config;
  mutable srv : Srv_dispatch.t option;
  offline_stash : (string, Source.t) Hashtbl.t;
}

let create ?(config = Srv_dispatch.default_config) ~print sys =
  { sys; print; cfg = config; srv = None; offline_stash = Hashtbl.create 4 }

let server env =
  match env.srv with
  | Some s -> s
  | None ->
    let s = Srv_dispatch.create ~config:env.cfg env.sys in
    Srv_dispatch.set_listener s (fun id out ->
        env.print
          (match out with
          | Srv_request.Completed _ -> Srv_request.outcome_line out
          | Rejected _ ->
            Printf.sprintf "req %d %s" id (Srv_request.outcome_line out)));
    env.srv <- Some s;
    s

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let kv tok =
  match String.index_opt tok '=' with
  | Some i ->
    Some
      ( String.sub tok 0 i,
        String.sub tok (i + 1) (String.length tok - i - 1) )
  | None -> None

let print_block env s =
  List.iter env.print
    (String.split_on_char '\n' s |> List.filter (fun l -> l <> ""))

let apply_config env pairs =
  if env.srv <> None then Error "config must precede the first directive"
  else
    let rec go cfg = function
      | [] ->
        env.cfg <- cfg;
        Ok ()
      | tok :: rest -> (
        match kv tok with
        | None -> Error (Printf.sprintf "config: %S is not KEY=VAL" tok)
        | Some (k, v) -> (
          let int_v () = int_of_string_opt v in
          match k with
          | "engines" -> (
            match int_v () with
            | Some n when n >= 1 -> go { cfg with Srv_dispatch.engines = n } rest
            | _ -> Error "config: engines must be a positive integer")
          | "queue" -> (
            match int_v () with
            | Some n when n >= 1 ->
              go
                { cfg with
                  Srv_dispatch.queue =
                    { cfg.Srv_dispatch.queue with Srv_admit.queue_capacity = n }
                }
                rest
            | _ -> Error "config: queue must be a positive integer")
          | "inflight" -> (
            match int_v () with
            | Some n when n >= 1 ->
              go
                { cfg with
                  Srv_dispatch.queue =
                    { cfg.Srv_dispatch.queue with
                      Srv_admit.max_session_in_flight = n
                    }
                }
                rest
            | _ -> Error "config: inflight must be a positive integer")
          | "cache" -> (
            match int_v () with
            | Some n when n >= 0 ->
              go { cfg with Srv_dispatch.plan_cache_capacity = n } rest
            | _ -> Error "config: cache must be a non-negative integer")
          | "overhead" -> (
            match float_of_string_opt v with
            | Some f when f >= 0.0 ->
              go { cfg with Srv_dispatch.service_overhead_ms = f } rest
            | _ -> Error "config: overhead must be a non-negative number")
          | _ -> Error (Printf.sprintf "config: unknown key %S" k)))
    in
    go env.cfg pairs

let do_request env = function
  | session :: lens :: query :: rest ->
    let args = ref [] in
    let priority = ref Srv_request.Normal in
    let deadline = ref None in
    let mode = ref Srv_request.Strict in
    let exec = ref None in
    let bad = ref None in
    List.iter
      (fun tok ->
        match kv tok with
        | None -> if !bad = None then bad := Some tok
        | Some ("!prio", v) -> (
          match Srv_request.priority_of_string v with
          | Some p -> priority := p
          | None -> if !bad = None then bad := Some tok)
        | Some ("!deadline", v) -> (
          match float_of_string_opt v with
          | Some f -> deadline := Some f
          | None -> if !bad = None then bad := Some tok)
        | Some ("!mode", "partial") -> mode := Srv_request.Partial
        | Some ("!mode", "strict") -> mode := Srv_request.Strict
        | Some ("!mode", _) -> if !bad = None then bad := Some tok
        | Some ("!exec", v) -> (
          match Alg_batch.mode_of_string v with
          | Some m -> exec := Some m
          | None -> if !bad = None then bad := Some tok)
        | Some (k, v) -> args := (k, v) :: !args)
      rest;
    (match !bad with
    | Some tok -> Error (Printf.sprintf "request: bad token %S" tok)
    | None -> (
      match
        Srv_dispatch.submit (server env) ~session ~lens ~query
          ~args:(List.rev !args) ~priority:!priority ?deadline_ms:!deadline
          ~mode:!mode ?exec:!exec ()
      with
      | Ok _ -> Ok ()
      | Error m -> Error m))
  | _ -> Error "request: expected SESSION LENS QUERY [k=v ...]"

let set_offline env name =
  let reg = Med_catalog.registry (Nimble.catalog env.sys) in
  match Src_registry.find reg name with
  | None -> Error (Printf.sprintf "unknown source %S" name)
  | Some src ->
    if not (Hashtbl.mem env.offline_stash name) then
      Hashtbl.replace env.offline_stash name src;
    Src_registry.remove reg name;
    Src_registry.register reg
      {
        src with
        Source.is_available = (fun () -> false);
        execute = (fun _ -> raise (Source.Unavailable name));
        documents = (fun _ -> raise (Source.Unavailable name));
      };
    env.print (Printf.sprintf "source %s offline" name);
    Ok ()

let set_online env name =
  match Hashtbl.find_opt env.offline_stash name with
  | None -> Error (Printf.sprintf "source %S was not taken offline here" name)
  | Some src ->
    let reg = Med_catalog.registry (Nimble.catalog env.sys) in
    Src_registry.remove reg name;
    Src_registry.register reg src;
    Hashtbl.remove env.offline_stash name;
    env.print (Printf.sprintf "source %s online" name);
    Ok ()

let exec_line env line =
  let line =
    match String.index_opt line '#' with
    | Some 0 -> ""
    | _ -> line
  in
  match tokens line with
  | [] -> Ok ()
  | [ "demo" ] -> (
    try
      Srv_workload.install_demo env.sys;
      env.print "demo users and lenses installed";
      Ok ()
    with
    | Invalid_argument m | Fe_lens.Lens_error m | Fe_auth.Auth_error m ->
      Error m)
  | "config" :: pairs -> apply_config env pairs
  | [ "open"; user; password ] -> (
    match Srv_dispatch.open_session (server env) ~user ~password with
    | Ok ses ->
      env.print
        (Printf.sprintf "session %s open (%s)" user
           (Fe_auth.role_to_string ses.Srv_session.ses_role));
      Ok ()
    | Error m -> Error m)
  | "request" :: rest -> do_request env rest
  | [ "advance"; ms ] -> (
    match float_of_string_opt ms with
    | Some f when f >= 0.0 ->
      Obs_clock.advance f;
      Ok ()
    | _ -> Error "advance: expected a non-negative number of milliseconds")
  | [ "tick" ] ->
    Srv_dispatch.tick (server env);
    Ok ()
  | [ "drain" ] ->
    Srv_dispatch.drain (server env);
    Ok ()
  | [ "offline"; name ] -> set_offline env name
  | [ "online"; name ] -> set_online env name
  | [ "invalidate"; name ] ->
    let dropped = Nimble.invalidate_source env.sys name in
    env.print
      (Printf.sprintf "invalidated %s (dropped %d cached results)" name dropped);
    Ok ()
  | [ "report" ] ->
    print_block env (Srv_dispatch.report (server env));
    Ok ()
  | [ "queue" ] ->
    env.print (Srv_admit.stats_line (Srv_dispatch.admit (server env)));
    Ok ()
  | [ "cache" ] ->
    print_block env (Srv_plancache.report (Srv_dispatch.plan_cache (server env)));
    Ok ()
  | [ "engines" ] ->
    List.iter env.print (Srv_dispatch.engine_lines (server env));
    Ok ()
  | [ "sessions" ] ->
    let srv = server env in
    List.iter
      (fun name ->
        match Srv_dispatch.find_session srv name with
        | Some ses -> env.print (Srv_session.summary ses)
        | None -> ())
      (Srv_dispatch.session_names srv);
    Ok ()
  | cmd :: _ -> Error (Printf.sprintf "unknown directive %S" cmd)

let run env text =
  let lines = String.split_on_char '\n' text in
  let rec go n = function
    | [] -> Ok ()
    | line :: rest -> (
      match exec_line env line with
      | Ok () -> go (n + 1) rest
      | Error m -> Error (Printf.sprintf "line %d: %s" n m))
  in
  go 1 lines
