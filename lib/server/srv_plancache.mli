(** The lens plan cache: repeated lens invocations skip XML-QL parsing
    and mediator planning, re-binding only their parameter values.

    Entries are keyed by {!Fe_lens.param_shape} — (lens, query, which
    parameters are rebindable, the rendered literals of those that are
    not).  A {e parametric} entry holds a plan compiled once against
    sentinel stand-ins for the rebindable parameters; a lookup
    substitutes the actual values structurally (plan expressions,
    residual conditions, SQL fragments re-rendered from their ASTs, the
    carried source query and construct template) — no parser, no
    planner.

    Honesty guard: a parametric entry is only admitted after its rebound
    plan for the first valuation compares structurally equal to a cold
    compile of the same valuation.  Shapes that fail — sentinel text
    leaking into an opaque artifact (a SQL join fragment's text, a
    pushed path), a [Dep_join] closure, any structural drift — are
    {e poisoned}: such invocations fall back to exact (value-keyed)
    entries, still skipping parse+plan on repeats of identical values.

    Eviction is LRU; mutation events from {!Med_catalog.on_mutation}
    (source registration, view definition/drop, explicit invalidation)
    evict every entry whose transitive source closure contains the
    mutated name.

    Each entry also records the catalog's statistics epoch
    ({!Med_catalog.stats_epoch}) at compile time.  A lookup that finds
    an entry compiled under an older epoch — the statistics were
    refreshed by [\analyze] or drifted materially since — drops it and
    recompiles, so cached plans never outlive the estimates that chose
    their join order. *)

type t

val create : ?capacity:int -> Med_catalog.t -> t
(** Default capacity 32.  0 disables caching: every {!lookup} compiles
    cold and reports a miss.  Subscribes to the catalog's mutation
    events for invalidation. *)

val capacity : t -> int
val size : t -> int

val lookup :
  t ->
  lens:Fe_lens.t ->
  query:string ->
  args:(string * string) list ->
  Med_planner.compiled * bool
(** The compiled plan bound to the invocation's actual parameter
    values, and whether it came from the cache ([true] = parse and
    planning were skipped).  Raises as {!Fe_lens.instantiate} /
    {!Med_planner.compile} on bad invocations. *)

val invalidate : t -> string -> int
(** Drop entries whose source closure contains the name (also invoked
    automatically via the catalog's mutation hook); returns how many
    were dropped. *)

val clear : t -> unit

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
      (** entries dropped by mutation events or a stale statistics
          epoch *)
  fallbacks : int;      (** shapes poisoned to exact-keyed entries *)
}

val stats : t -> stats

val report : t -> string
(** [plan cache: size=3/32 hits=10 misses=4 evictions=0 invalidations=1
    fallbacks=0] plus one line per cached shape, LRU order. *)
