(** The concurrency server: sessions, admission, the lens plan cache,
    and load-balanced dispatch over N logical engines.

    Timing is modeled entirely on the virtual clock ({!Obs_clock}), so
    every run over the same request stream is deterministic: requests
    execute run-to-completion (their simulated network time advances the
    shared clock), and each execution occupies the least-loaded idle
    engine until [start + service] where service = measured virtual time
    plus a fixed per-request overhead.  Queueing therefore develops
    exactly when requests arrive faster than engines free up, and the
    admission queue sheds deterministically.

    Requests bypass the whole-query result cache on purpose — the
    server's caching layer is the plan cache, and byte-identical output
    across interleavings is part of its contract (see the QCheck
    properties in the test suite). *)

type config = {
  engines : int;                  (** logical engines; >= 1 *)
  queue : Srv_admit.config;
  plan_cache_capacity : int;      (** 0 disables the plan cache *)
  service_overhead_ms : float;
      (** fixed virtual cost per request beyond its measured network
          time — what makes engines distinguishably busy *)
}

val default_config : config
(** 2 engines, {!Srv_admit.default_config}, plan cache 32, 1.0 ms
    overhead. *)

type t

val create : ?config:config -> Nimble.t -> t

val open_session :
  ?lenses:string list ->
  t ->
  user:string ->
  password:string ->
  (Srv_session.t, string) result
(** One live session per user name; reopening replaces the old
    session's counters. *)

val submit :
  t ->
  session:string ->
  lens:string ->
  query:string ->
  ?args:(string * string) list ->
  ?priority:Srv_request.priority ->
  ?deadline_ms:float ->
  ?mode:Srv_request.failure_mode ->
  ?exec:Alg_batch.mode ->
  unit ->
  (int, string) result
(** Enqueue an invocation and pump whatever can start at the current
    virtual time; returns the request id.  [Error] only for unknown
    sessions — authorization failures and load shedding are recorded as
    {!Srv_request.Rejected} outcomes under the returned id. *)

val tick : t -> unit
(** Start every queued request an idle engine can take at the current
    virtual time (the workload driver calls this after advancing the
    clock). *)

val drain : t -> unit
(** Advance the virtual clock to engine-free times until the queue is
    empty — finishes all admitted work. *)

val outcome : t -> int -> Srv_request.outcome option
val outcomes : t -> (int * Srv_request.outcome) list
(** All recorded outcomes, by request id. *)

val find_session : t -> string -> Srv_session.t option
val session_names : t -> string list

val plan_cache : t -> Srv_plancache.t
val admit : t -> Srv_admit.t

val set_listener : t -> (int -> Srv_request.outcome -> unit) -> unit
(** Called once per settled request (completion or rejection), in
    settlement order — the CLI's live feed. *)

val engine_lines : t -> string list
(** One deterministic line per engine:
    [engine 0: served=4 busy=12.40ms]. *)

val report : t -> string
(** Full status: config, queue, plan cache, engines, sessions, and
    every outcome in request order. *)
