(* Load-balanced dispatch of admitted lens invocations over N logical
   engines, on the virtual clock. *)

type config = {
  engines : int;
  queue : Srv_admit.config;
  plan_cache_capacity : int;
  service_overhead_ms : float;
}

let default_config =
  {
    engines = 2;
    queue = Srv_admit.default_config;
    plan_cache_capacity = 32;
    service_overhead_ms = 1.0;
  }

type engine = {
  eng_id : int;
  mutable eng_busy_until_ms : float;
  mutable eng_busy_ms : float;
  mutable eng_served : int;
  eng_requests : Obs_metrics.counter;
  eng_busy_gauge : Obs_metrics.gauge;
}

type t = {
  sys : Nimble.t;
  cfg : config;
  admit : Srv_admit.t;
  cache : Srv_plancache.t;
  engines : engine array;
  sessions : (string, Srv_session.t) Hashtbl.t;
  outcomes : (int, Srv_request.outcome) Hashtbl.t;
  mutable next_id : int;
  mutable listener : (int -> Srv_request.outcome -> unit) option;
  m_submitted : Obs_metrics.counter;
  m_completed : Obs_metrics.counter;
  m_rejected : Obs_metrics.counter;
}

let create ?(config = default_config) sys =
  if config.engines < 1 then invalid_arg "Srv_dispatch.create: engines";
  {
    sys;
    cfg = config;
    admit = Srv_admit.create config.queue;
    cache =
      Srv_plancache.create ~capacity:config.plan_cache_capacity
        (Nimble.catalog sys);
    engines =
      Array.init config.engines (fun i ->
          {
            eng_id = i;
            eng_busy_until_ms = 0.0;
            eng_busy_ms = 0.0;
            eng_served = 0;
            eng_requests =
              Obs_metrics.counter (Printf.sprintf "srv.engine.%d.requests" i);
            eng_busy_gauge =
              Obs_metrics.gauge (Printf.sprintf "srv.engine.%d.busy_ms" i);
          });
    sessions = Hashtbl.create 7;
    outcomes = Hashtbl.create 32;
    next_id = 0;
    listener = None;
    m_submitted = Obs_metrics.counter "srv.requests.submitted";
    m_completed = Obs_metrics.counter "srv.requests.completed";
    m_rejected = Obs_metrics.counter "srv.requests.rejected";
  }

let plan_cache t = t.cache
let admit t = t.admit
let set_listener t f = t.listener <- Some f
let find_session t name = Hashtbl.find_opt t.sessions name

let session_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.sessions []
  |> List.sort String.compare

let open_session ?(lenses = []) t ~user ~password =
  match
    Srv_session.open_session ~lenses (Nimble.auth t.sys) ~user ~password
  with
  | Error _ as e -> e
  | Ok ses ->
    Hashtbl.replace t.sessions user ses;
    Ok ses

let outcome t id = Hashtbl.find_opt t.outcomes id

let outcomes t =
  Hashtbl.fold (fun id o acc -> (id, o) :: acc) t.outcomes []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let settle t id out =
  Hashtbl.replace t.outcomes id out;
  (match out with
  | Srv_request.Completed _ -> Obs_metrics.inc t.m_completed
  | Rejected _ -> Obs_metrics.inc t.m_rejected);
  match t.listener with None -> () | Some f -> f id out

(* Execute one admitted request on [engine].  The simulated network
   time it consumes advances the shared virtual clock; a fixed overhead
   is charged to the engine only (charging it globally would keep every
   engine forever idle at dispatch time and no queueing could ever
   develop). *)
let execute t engine (entry : Srv_admit.entry) =
  let req = entry.Srv_admit.ent_request in
  let ses = entry.Srv_admit.ent_session in
  let start = Obs_clock.virtual_ms () in
  let run () =
    let lens =
      match Nimble.find_lens t.sys req.Srv_request.req_lens with
      | Some l -> l
      | None -> raise (Fe_lens.Lens_error ("unknown lens " ^ req.Srv_request.req_lens))
    in
    let compiled, plan_hit =
      Srv_plancache.lookup t.cache ~lens ~query:req.Srv_request.req_query
        ~args:req.Srv_request.req_args
    in
    Nimble.tick_views t.sys;
    let cat = Nimble.catalog t.sys in
    let saved_mode = Med_catalog.exec_mode cat in
    (match req.Srv_request.req_exec with
    | Some m -> Med_catalog.set_exec_mode cat m
    | None -> ());
    (* The request's queue deadline doubles as its retry budget: a
       request that promised an answer by submit+T must not keep backing
       off past that instant, so the budget is whatever of T the queue
       wait left over.  The executor's own per-query context nests
       inside and inherits the bound. *)
    let retry_budget =
      Option.map
        (fun d ->
          Float.max 0.0 (entry.Srv_admit.ent_enqueued_ms +. d -. start))
        req.Srv_request.req_deadline_ms
    in
    let result, _ =
      Src_retry.with_query
        (Med_catalog.retry cat)
        ~partial:(req.Srv_request.req_mode = Srv_request.Partial)
        ?deadline_ms:retry_budget
        (fun () ->
          Fun.protect
            ~finally:(fun () -> Med_catalog.set_exec_mode cat saved_mode)
            (fun () ->
              let view_lookup = Nimble.view_lookup t.sys in
              match req.Srv_request.req_mode with
              | Srv_request.Strict -> Med_exec.run_compiled ~view_lookup cat compiled
              | Partial -> Med_exec.run_compiled_partial ~view_lookup cat compiled))
    in
    let output = Fe_format.render lens.Fe_lens.device result.Med_exec.trees in
    (result, plan_hit, output)
  in
  let settled =
    match run () with
    | result, plan_hit, output ->
      let finish = Obs_clock.virtual_ms () in
      let service = (finish -. start) +. t.cfg.service_overhead_ms in
      engine.eng_busy_until_ms <- finish +. t.cfg.service_overhead_ms;
      engine.eng_busy_ms <- engine.eng_busy_ms +. service;
      engine.eng_served <- engine.eng_served + 1;
      Obs_metrics.inc engine.eng_requests;
      Obs_metrics.set_gauge engine.eng_busy_gauge engine.eng_busy_ms;
      ses.Srv_session.ses_completed <- ses.Srv_session.ses_completed + 1;
      Srv_request.Completed
        {
          rep_request = req;
          rep_engine = engine.eng_id;
          rep_submit_ms = entry.Srv_admit.ent_enqueued_ms;
          rep_start_ms = start;
          rep_service_ms = service;
          rep_plan_hit = plan_hit;
          rep_rows = List.length result.Med_exec.trees;
          rep_skipped = result.Med_exec.skipped_sources;
          rep_output = output;
        }
    | exception e ->
      let msg =
        match e with
        | Med_catalog.Catalog_error m | Med_exec.Exec_error m
        | Fe_lens.Lens_error m ->
          m
        | Med_planner.Plan_error m -> "planning: " ^ m
        | Source.Unavailable s | Alg_exec.Source_unavailable s ->
          Printf.sprintf "source %s is unavailable" s
        | Source.Query_rejected m -> "source rejected query: " ^ m
        | Invalid_argument m -> m
        | e -> raise e
      in
      ses.Srv_session.ses_rejected <- ses.Srv_session.ses_rejected + 1;
      Srv_request.Rejected (Failed msg)
  in
  ses.Srv_session.ses_in_flight <- ses.Srv_session.ses_in_flight - 1;
  settle t req.Srv_request.req_id settled

(* Idle engines at virtual [now], least-loaded first (total busy time,
   then id — a deterministic least-loaded pick). *)
let pick_idle t ~now =
  Array.to_list t.engines
  |> List.filter (fun e -> e.eng_busy_until_ms <= now)
  |> List.sort (fun a b ->
         compare (a.eng_busy_ms, a.eng_id) (b.eng_busy_ms, b.eng_id))
  |> function
  | [] -> None
  | e :: _ -> Some e

let rec pump t =
  let now = Obs_clock.virtual_ms () in
  match pick_idle t ~now with
  | None -> ()
  | Some engine -> (
    match Srv_admit.take t.admit ~now_ms:now with
    | Srv_admit.Empty -> ()
    | Expired entry ->
      let ses = entry.Srv_admit.ent_session in
      ses.Srv_session.ses_in_flight <- ses.Srv_session.ses_in_flight - 1;
      ses.Srv_session.ses_rejected <- ses.Srv_session.ses_rejected + 1;
      settle t entry.Srv_admit.ent_request.Srv_request.req_id
        (Srv_request.Rejected Deadline_expired);
      pump t
    | Ready entry ->
      execute t engine entry;
      pump t)

let tick = pump

let drain t =
  pump t;
  let continue = ref (Srv_admit.depth t.admit > 0) in
  while !continue do
    let now = Obs_clock.virtual_ms () in
    let next =
      Array.fold_left
        (fun acc e ->
          if e.eng_busy_until_ms > now then
            match acc with
            | None -> Some e.eng_busy_until_ms
            | Some m -> Some (Float.min m e.eng_busy_until_ms)
          else acc)
        None t.engines
    in
    (match next with
    | Some until -> Obs_clock.advance (until -. now)
    | None -> ());
    pump t;
    (* No engine to wait for and nothing startable means the queue can
       only be non-empty transiently; bail to avoid spinning. *)
    continue := Srv_admit.depth t.admit > 0 && next <> None
  done

let submit t ~session ~lens ~query ?(args = []) ?(priority = Srv_request.Normal)
    ?deadline_ms ?(mode = Srv_request.Strict) ?exec () =
  match Hashtbl.find_opt t.sessions session with
  | None -> Error (Printf.sprintf "no open session %S" session)
  | Some ses ->
    let id = t.next_id in
    t.next_id <- t.next_id + 1;
    Obs_metrics.inc t.m_submitted;
    ses.Srv_session.ses_submitted <- ses.Srv_session.ses_submitted + 1;
    let req =
      {
        Srv_request.req_id = id;
        req_session = session;
        req_lens = lens;
        req_query = query;
        req_args = args;
        req_priority = priority;
        req_deadline_ms = deadline_ms;
        req_mode = mode;
        req_exec = exec;
      }
    in
    let denied msg =
      ses.Srv_session.ses_rejected <- ses.Srv_session.ses_rejected + 1;
      settle t id (Srv_request.Rejected (Denied msg));
      Ok id
    in
    (match Nimble.find_lens t.sys lens with
    | None -> denied (Printf.sprintf "unknown lens %S" lens)
    | Some l -> (
      match Srv_session.allows ses l with
      | Error msg -> denied msg
      | Ok () -> (
        match Srv_admit.offer t.admit ses req with
        | Error rej ->
          ses.Srv_session.ses_rejected <- ses.Srv_session.ses_rejected + 1;
          settle t id (Srv_request.Rejected rej);
          Ok id
        | Ok () ->
          pump t;
          Ok id)))

let engine_lines t =
  Array.to_list t.engines
  |> List.map (fun e ->
         Printf.sprintf "engine %d: served=%d busy=%.2fms" e.eng_id
           e.eng_served e.eng_busy_ms)

let report t =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "server: engines=%d overhead=%.1fms\n" t.cfg.engines
       t.cfg.service_overhead_ms);
  Buffer.add_string b (Srv_admit.stats_line t.admit);
  Buffer.add_char b '\n';
  Buffer.add_string b (Srv_plancache.report t.cache);
  Buffer.add_char b '\n';
  if Sem_cache.enabled (Nimble.sem_cache t.sys) then begin
    Buffer.add_string b (Sem_cache.report (Nimble.sem_cache t.sys));
    Buffer.add_char b '\n'
  end;
  (* Retry/breaker lines appear only when a policy is active, so
     resilience-free reports stay byte-identical. *)
  (let retry = Med_catalog.retry (Nimble.catalog t.sys) in
   if Src_retry.active (Src_retry.policy retry) then
     Buffer.add_string b (Src_retry.report retry));
  List.iter
    (fun l ->
      Buffer.add_string b l;
      Buffer.add_char b '\n')
    (engine_lines t);
  List.iter
    (fun name ->
      match find_session t name with
      | Some ses ->
        Buffer.add_string b (Srv_session.summary ses);
        Buffer.add_char b '\n'
      | None -> ())
    (session_names t);
  List.iter
    (fun (id, out) ->
      Buffer.add_string b
        (match out with
        | Srv_request.Completed _ -> Srv_request.outcome_line out
        | Rejected _ -> Printf.sprintf "req %d %s" id (Srv_request.outcome_line out));
      Buffer.add_char b '\n')
    (outcomes t);
  Buffer.contents b
