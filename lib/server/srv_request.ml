(* Requests and outcomes of the concurrency server. *)

type priority =
  | High
  | Normal
  | Low

let priority_rank = function High -> 0 | Normal -> 1 | Low -> 2
let priority_to_string = function High -> "high" | Normal -> "normal" | Low -> "low"

let priority_of_string = function
  | "high" -> Some High
  | "normal" -> Some Normal
  | "low" -> Some Low
  | _ -> None

type failure_mode =
  | Strict
  | Partial

type t = {
  req_id : int;
  req_session : string;
  req_lens : string;
  req_query : string;
  req_args : (string * string) list;
  req_priority : priority;
  req_deadline_ms : float option;
  req_mode : failure_mode;
  req_exec : Alg_batch.mode option;
}

type reject =
  | Overloaded
  | Session_saturated
  | Deadline_expired
  | Denied of string
  | Failed of string

let reject_to_string = function
  | Overloaded -> "overloaded: admission queue full"
  | Session_saturated -> "saturated: session in-flight cap reached"
  | Deadline_expired -> "expired: queued past deadline"
  | Denied m -> "denied: " ^ m
  | Failed m -> "failed: " ^ m

type report = {
  rep_request : t;
  rep_engine : int;
  rep_submit_ms : float;
  rep_start_ms : float;
  rep_service_ms : float;
  rep_plan_hit : bool;
  rep_rows : int;
  rep_skipped : string list;
  rep_output : string;
}

type outcome =
  | Completed of report
  | Rejected of reject

let queue_wait_ms r = r.rep_start_ms -. r.rep_submit_ms

let outcome_line = function
  | Completed r ->
    let q = r.rep_request in
    let cells =
      Obs_report.serve_cells ~engine:r.rep_engine
        ~queue_wait_ms:(queue_wait_ms r) ~plan_hit:r.rep_plan_hit
      @ [
          Obs_report.ms_cell "service" r.rep_service_ms;
          Obs_report.int_cell "rows" r.rep_rows;
        ]
    in
    Printf.sprintf "req %d %s %s.%s ok %s%s" q.req_id q.req_session q.req_lens
      q.req_query
      (Obs_report.cells cells)
      (match r.rep_skipped with
      | [] -> ""
      | xs -> " skipped=" ^ String.concat "," xs)
  | Rejected rej -> "rejected: " ^ reject_to_string rej
