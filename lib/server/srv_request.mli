(** Requests of the concurrency server: one lens invocation with
    parameters, a priority class, source-failure semantics, an optional
    queue-wait deadline, and an optional execution-engine override.

    A request either completes with a {!report} (what ran where, how
    long it queued, whether the plan cache hit) or is rejected with a
    typed {!reject} — the deterministic load-shedding surface of
    {!Srv_admit}. *)

type priority =
  | High
  | Normal
  | Low

val priority_rank : priority -> int
(** 0 for [High] — lower ranks dequeue first. *)

val priority_to_string : priority -> string
val priority_of_string : string -> priority option

(** Strict aborts on any unavailable source; partial skips them and
    reports their names (section 3.4). *)
type failure_mode =
  | Strict
  | Partial

type t = {
  req_id : int;              (** server-assigned, in submission order *)
  req_session : string;
  req_lens : string;
  req_query : string;        (** query name within the lens *)
  req_args : (string * string) list;
  req_priority : priority;
  req_deadline_ms : float option;
      (** maximum virtual queue wait; [None] waits forever *)
  req_mode : failure_mode;
  req_exec : Alg_batch.mode option;
      (** per-request engine override; [None] uses the catalog's *)
}

type reject =
  | Overloaded            (** admission queue full *)
  | Session_saturated     (** the session hit its in-flight cap *)
  | Deadline_expired      (** queued past its deadline *)
  | Denied of string      (** unknown session/lens, or role too low *)
  | Failed of string      (** admitted, but execution raised *)

val reject_to_string : reject -> string

type report = {
  rep_request : t;
  rep_engine : int;          (** logical engine that ran it *)
  rep_submit_ms : float;     (** virtual clock at submission *)
  rep_start_ms : float;      (** virtual clock when an engine took it *)
  rep_service_ms : float;    (** virtual service time (network + overhead) *)
  rep_plan_hit : bool;       (** served from the plan cache *)
  rep_rows : int;            (** result trees produced *)
  rep_skipped : string list; (** partial mode: unavailable sources *)
  rep_output : string;       (** device-formatted result *)
}

type outcome =
  | Completed of report
  | Rejected of reject

val queue_wait_ms : report -> float

val outcome_line : outcome -> string
(** One deterministic summary line (virtual times only):
    [req 3 alice sales.by_region ok engine=0 wait=0.00 plan=hit …]. *)
