(** Admission control: a bounded priority queue with deterministic
    load-shedding and per-session fairness.

    Requests wait here between [submit] and engine dispatch.  When the
    queue is full the offer is shed with {!Srv_request.Overloaded}; when
    a session already has [max_session_in_flight] requests queued or
    executing it is shed with [Session_saturated].  Dequeue order is
    total and deterministic: best priority class first, then the session
    served least recently (round-robin fairness), then submission
    order — so two runs over the same request stream always dispatch in
    the same order.  A request whose queue wait exceeds its deadline is
    expired at dequeue time, never silently dropped. *)

type config = {
  queue_capacity : int;       (** waiting slots; >= 1 *)
  max_session_in_flight : int;(** queued + executing per session; >= 1 *)
}

val default_config : config
(** capacity 8, 4 in flight per session. *)

type entry = {
  ent_request : Srv_request.t;
  ent_session : Srv_session.t;
  ent_enqueued_ms : float;
}

type t

val create : config -> t

val depth : t -> int

val offer :
  t -> Srv_session.t -> Srv_request.t -> (unit, Srv_request.reject) result
(** Enqueue at the current virtual time, bumping the session's in-flight
    count on success.  Sheds ([Overloaded] / [Session_saturated])
    without side effects otherwise. *)

type taken =
  | Empty
  | Expired of entry  (** deadline exceeded while queued *)
  | Ready of entry

val take : t -> now_ms:float -> taken
(** Remove the next entry in dispatch order.  [Expired] entries come
    out one at a time so the caller can record each rejection; both
    [Expired] and [Ready] decrement nothing — in-flight accounting
    stays with the caller, which knows how the request ends. *)

val stats_line : t -> string
(** [queue: depth=2/8 admitted=14 shed=3 (overload=2 saturated=1 expired=0)]. *)
