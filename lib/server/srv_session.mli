(** Multi-query sessions.

    A session is an authenticated principal ({!Fe_auth}) holding a
    binding to the lenses it may invoke, plus live counters the
    admission controller uses for per-session fairness and in-flight
    caps.  Sessions are opened once and submit many requests. *)

type t = {
  ses_name : string;
  ses_role : Fe_auth.role;
  ses_opened_ms : float;        (** virtual clock at [open_session] *)
  ses_lenses : string list;
      (** lens restriction; [[]] means any registered lens *)
  mutable ses_in_flight : int;  (** queued or executing right now *)
  mutable ses_submitted : int;
  mutable ses_completed : int;
  mutable ses_rejected : int;
}

val open_session :
  ?lenses:string list ->
  Fe_auth.t ->
  user:string ->
  password:string ->
  (t, string) result
(** Authenticate against the directory; the session carries the user's
    role at open time. *)

val allows : t -> Fe_lens.t -> (unit, string) result
(** Check the session's lens restriction and
    [Fe_auth.role_allows lens.required_role ses_role]. *)

val summary : t -> string
(** [alice (analyst): submitted=4 completed=3 rejected=1 in-flight=0]. *)
