(* Authenticated sessions with live fairness counters. *)

type t = {
  ses_name : string;
  ses_role : Fe_auth.role;
  ses_opened_ms : float;
  ses_lenses : string list;
  mutable ses_in_flight : int;
  mutable ses_submitted : int;
  mutable ses_completed : int;
  mutable ses_rejected : int;
}

let open_session ?(lenses = []) auth ~user ~password =
  match Fe_auth.authenticate auth user password with
  | None -> Error (Printf.sprintf "authentication failed for %S" user)
  | Some role ->
    Ok
      {
        ses_name = user;
        ses_role = role;
        ses_opened_ms = Obs_clock.virtual_ms ();
        ses_lenses = lenses;
        ses_in_flight = 0;
        ses_submitted = 0;
        ses_completed = 0;
        ses_rejected = 0;
      }

let allows t (lens : Fe_lens.t) =
  if t.ses_lenses <> [] && not (List.mem lens.Fe_lens.lens_name t.ses_lenses)
  then
    Error
      (Printf.sprintf "session %S is not bound to lens %S" t.ses_name
         lens.Fe_lens.lens_name)
  else if not (Fe_auth.role_allows lens.Fe_lens.required_role t.ses_role) then
    Error
      (Printf.sprintf "lens %S requires role %s; %S has %s"
         lens.Fe_lens.lens_name
         (Fe_auth.role_to_string lens.Fe_lens.required_role)
         t.ses_name
         (Fe_auth.role_to_string t.ses_role))
  else Ok ()

let summary t =
  Printf.sprintf "%s (%s): submitted=%d completed=%d rejected=%d in-flight=%d"
    t.ses_name
    (Fe_auth.role_to_string t.ses_role)
    t.ses_submitted t.ses_completed t.ses_rejected t.ses_in_flight
