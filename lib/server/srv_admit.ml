(* Bounded priority admission queue with round-robin session fairness. *)

type config = {
  queue_capacity : int;
  max_session_in_flight : int;
}

let default_config = { queue_capacity = 8; max_session_in_flight = 4 }

type entry = {
  ent_request : Srv_request.t;
  ent_session : Srv_session.t;
  ent_enqueued_ms : float;
}

type slot = { entry : entry; seq : int }

type t = {
  cfg : config;
  mutable waiting : slot list;  (* arrival order *)
  mutable next_seq : int;
  mutable serve_stamp : int;
  last_served : (string, int) Hashtbl.t;  (* session -> serve stamp *)
  m_admitted : Obs_metrics.counter;
  m_shed_overload : Obs_metrics.counter;
  m_shed_saturated : Obs_metrics.counter;
  m_shed_expired : Obs_metrics.counter;
  m_depth : Obs_metrics.gauge;
  m_wait : Obs_metrics.histogram;
}

let create cfg =
  if cfg.queue_capacity < 1 then invalid_arg "Srv_admit.create: queue_capacity";
  if cfg.max_session_in_flight < 1 then
    invalid_arg "Srv_admit.create: max_session_in_flight";
  {
    cfg;
    waiting = [];
    next_seq = 0;
    serve_stamp = 0;
    last_served = Hashtbl.create 7;
    m_admitted = Obs_metrics.counter "srv.admit.admitted";
    m_shed_overload = Obs_metrics.counter "srv.admit.shed_overload";
    m_shed_saturated = Obs_metrics.counter "srv.admit.shed_saturated";
    m_shed_expired = Obs_metrics.counter "srv.admit.shed_expired";
    m_depth = Obs_metrics.gauge "srv.queue.depth";
    m_wait = Obs_metrics.histogram "srv.queue.wait_ms";
  }

let depth t = List.length t.waiting
let sync_depth t = Obs_metrics.set_gauge t.m_depth (float_of_int (depth t))

let offer t session (req : Srv_request.t) =
  if depth t >= t.cfg.queue_capacity then (
    Obs_metrics.inc t.m_shed_overload;
    Error Srv_request.Overloaded)
  else if session.Srv_session.ses_in_flight >= t.cfg.max_session_in_flight
  then (
    Obs_metrics.inc t.m_shed_saturated;
    Error Srv_request.Session_saturated)
  else begin
    let entry =
      {
        ent_request = req;
        ent_session = session;
        ent_enqueued_ms = Obs_clock.virtual_ms ();
      }
    in
    t.waiting <- t.waiting @ [ { entry; seq = t.next_seq } ];
    t.next_seq <- t.next_seq + 1;
    session.Srv_session.ses_in_flight <-
      session.Srv_session.ses_in_flight + 1;
    Obs_metrics.inc t.m_admitted;
    sync_depth t;
    Ok ()
  end

type taken =
  | Empty
  | Expired of entry
  | Ready of entry

(* Dispatch key: priority class, then how recently the session was
   served (never-served wins), then submission order.  Deterministic
   total order — ties are impossible because [seq] is unique. *)
let key t slot =
  let stamp =
    match
      Hashtbl.find_opt t.last_served
        slot.entry.ent_session.Srv_session.ses_name
    with
    | Some s -> s
    | None -> -1
  in
  (Srv_request.priority_rank slot.entry.ent_request.Srv_request.req_priority,
   stamp, slot.seq)

let take t ~now_ms =
  match t.waiting with
  | [] -> Empty
  | first :: rest ->
    let best =
      List.fold_left
        (fun best s -> if key t s < key t best then s else best)
        first rest
    in
    t.waiting <- List.filter (fun s -> s.seq <> best.seq) t.waiting;
    sync_depth t;
    let e = best.entry in
    let wait = now_ms -. e.ent_enqueued_ms in
    let expired =
      match e.ent_request.Srv_request.req_deadline_ms with
      | Some d -> wait > d
      | None -> false
    in
    if expired then (
      Obs_metrics.inc t.m_shed_expired;
      Expired e)
    else begin
      t.serve_stamp <- t.serve_stamp + 1;
      Hashtbl.replace t.last_served e.ent_session.Srv_session.ses_name
        t.serve_stamp;
      Obs_metrics.observe t.m_wait wait;
      Ready e
    end

let stats_line t =
  let c = Obs_metrics.value in
  let ov = c t.m_shed_overload
  and sa = c t.m_shed_saturated
  and ex = c t.m_shed_expired in
  Printf.sprintf
    "queue: depth=%d/%d admitted=%d shed=%d (overload=%d saturated=%d expired=%d)"
    (depth t) t.cfg.queue_capacity (c t.m_admitted) (ov + sa + ex) ov sa ex
