(* Seeded closed-loop driver and the demo fixture. *)

type spec = {
  seed : int;
  requests : int;
  burst : int;
  think_ms : float;
  sessions : string list;
  targets : (string * string) list;
  params : (string * string list) list;
}

let demo_spec =
  {
    seed = 42;
    requests = 24;
    burst = 3;
    think_ms = 6.0;
    sessions = [ "alice"; "bob" ];
    targets =
      [ ("sales", "by_region"); ("sales", "big_orders"); ("catalog", "all") ];
    params =
      [
        ("region", [ "west"; "east"; "north" ]);
        ("min", [ "100"; "500"; "1000" ]);
      ];
  }

type summary = {
  ws_submitted : int;
  ws_completed : int;
  ws_rejected : int;
  ws_plan_hits : int;
  ws_queue_wait_ms : float;
  ws_elapsed_ms : float;
}

let run srv spec =
  let g = Prng.create spec.seed in
  let started = Obs_clock.virtual_ms () in
  let ids = ref [] in
  let sessions = Array.of_list spec.sessions in
  let targets = Array.of_list spec.targets in
  if Array.length sessions = 0 then invalid_arg "Srv_workload.run: no sessions";
  if Array.length targets = 0 then invalid_arg "Srv_workload.run: no targets";
  let burst = max 1 spec.burst in
  for i = 0 to spec.requests - 1 do
    let session = sessions.(i mod Array.length sessions) in
    let lens, query = Prng.pick g targets in
    let args =
      List.map (fun (name, pool) -> (name, Prng.pick_list g pool)) spec.params
    in
    let priority =
      match Prng.int g 4 with
      | 0 -> Srv_request.High
      | 1 | 2 -> Srv_request.Normal
      | _ -> Srv_request.Low
    in
    (match
       Srv_dispatch.submit srv ~session ~lens ~query ~args ~priority ()
     with
    | Ok id -> ids := id :: !ids
    | Error m -> invalid_arg ("Srv_workload.run: " ^ m));
    if (i + 1) mod burst = 0 && i + 1 < spec.requests then
      Obs_clock.advance (Prng.float g (2.0 *. spec.think_ms))
  done;
  Srv_dispatch.drain srv;
  let finished = Obs_clock.virtual_ms () in
  let init =
    {
      ws_submitted = List.length !ids;
      ws_completed = 0;
      ws_rejected = 0;
      ws_plan_hits = 0;
      ws_queue_wait_ms = 0.0;
      ws_elapsed_ms = finished -. started;
    }
  in
  List.fold_left
    (fun acc id ->
      match Srv_dispatch.outcome srv id with
      | Some (Srv_request.Completed r) ->
        {
          acc with
          ws_completed = acc.ws_completed + 1;
          ws_plan_hits = (acc.ws_plan_hits + if r.Srv_request.rep_plan_hit then 1 else 0);
          ws_queue_wait_ms = acc.ws_queue_wait_ms +. Srv_request.queue_wait_ms r;
        }
      | Some (Srv_request.Rejected _) ->
        { acc with ws_rejected = acc.ws_rejected + 1 }
      | None -> acc)
    init (List.rev !ids)

let summary_line s =
  Printf.sprintf
    "workload: submitted=%d completed=%d rejected=%d plan-hits=%d \
     avg-wait=%.2fms elapsed=%.2fms"
    s.ws_submitted s.ws_completed s.ws_rejected s.ws_plan_hits
    (if s.ws_completed = 0 then 0.0
     else s.ws_queue_wait_ms /. float_of_int s.ws_completed)
    s.ws_elapsed_ms

(* ------------------------------------------------------------------ *)
(* Demo fixture                                                        *)
(* ------------------------------------------------------------------ *)

let demo_users = [ ("admin", "secret"); ("alice", "wonder"); ("bob", "builder") ]

let install_demo sys =
  List.iter
    (fun ((user, password), role) ->
      match Nimble.add_user sys ~role user password with
      | Ok () -> ()
      | Error m -> invalid_arg m)
    (List.combine demo_users [ Fe_auth.Admin; Fe_auth.Analyst; Fe_auth.Viewer ]);
  let sales =
    Fe_lens.make ~name:"sales" ~required_role:Fe_auth.Analyst
      ~params:
        [
          Fe_lens.param ~default:(Value.String "west") "region" Value.TString;
          Fe_lens.param ~default:(Value.Int 100) "min" Value.TInt;
        ]
      ~device:Fe_format.Text
      [
        ( "by_region",
          {|WHERE <row><name>$n</name><region>%region%</region><tier>$t</tier></row> IN "crm.customers"
            CONSTRUCT <customer><name>$n</name><tier>$t</tier></customer>|}
        );
        ( "big_orders",
          {|WHERE <row><item>$i</item><amount>$a</amount></row> IN "crm.orders",
                 $a >= %min%
            CONSTRUCT <order><item>$i</item><amount>$a</amount></order>|} );
      ]
  in
  let catalog =
    Fe_lens.make ~name:"catalog" ~required_role:Fe_auth.Viewer
      ~device:Fe_format.Text
      [
        ( "all",
          {|WHERE <product sku=$s><price>$p</price></product> IN "products.catalog"
            CONSTRUCT <item><sku>$s</sku><price>$p</price></item>|} );
      ]
  in
  List.iter
    (fun lens ->
      match Nimble.add_lens sys lens with
      | Ok () -> ()
      | Error m -> invalid_arg m)
    [ sales; catalog ]

let demo_system () =
  let sys = Nimble.create () in
  let db = Rel_db.create ~name:"crm" () in
  List.iter
    (fun s -> ignore (Rel_db.exec db s))
    [
      "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, region TEXT, tier INT)";
      "CREATE TABLE orders (oid INT PRIMARY KEY, cust_id INT, item TEXT, amount FLOAT)";
      "INSERT INTO customers VALUES (1, 'Acme', 'west', 1), (2, 'Globex', 'east', 2), \
       (3, 'Initech', 'west', 2), (4, 'Umbrella', 'north', 3), (5, 'Stark', 'east', 1)";
      "INSERT INTO orders VALUES (100, 1, 'widget', 250.0), (101, 2, 'server', 9000.0), \
       (102, 3, 'widget', 120.0), (103, 4, 'gizmo', 640.0), (104, 5, 'server', 7500.0), \
       (105, 1, 'gadget', 80.0)";
    ];
  let products =
    Xml_source.of_xml_strings ~name:"products"
      [
        ( "catalog",
          {|<catalog><product sku="widget"><price>25</price></product>
            <product sku="server"><price>4500</price></product>
            <product sku="gizmo"><price>64</price></product></catalog>|} );
      ]
  in
  List.iter
    (fun src ->
      match Nimble.register_source sys src with
      | Ok () -> ()
      | Error m -> invalid_arg m)
    [ Rel_source.make db; products ];
  install_demo sys;
  sys
