(** Line-oriented server scripts — the driver behind [nimble_cli serve]
    and the repl's [\serve].

    Directives (blank lines and [#] comments are skipped):
    {v
      demo                          install demo users + lenses
      config KEY=VAL ...            engines=N queue=N inflight=N
                                    cache=N overhead=MS (before first use)
      open USER PASSWORD            open a session
      request SESSION LENS QUERY [k=v ...] [!prio=P] [!deadline=MS]
                                   [!mode=partial] [!exec=MODE]
      advance MS                    advance the virtual clock
      tick                          start whatever idle engines can take
      drain                         run everything admitted to completion
      offline SOURCE                force a registered source offline
      online SOURCE                 restore it
      invalidate NAME               fire a catalog invalidation
      report | queue | cache | engines | sessions
    v}

    Each settled request prints its {!Srv_request.outcome_line}
    immediately, so scripts read as deterministic transcripts. *)

type env

val create :
  ?config:Srv_dispatch.config -> print:(string -> unit) -> Nimble.t -> env
(** [print] receives complete lines (no trailing newline).  [config]
    seeds the server configuration; a [config] directive can still
    adjust it before the first session opens. *)

val server : env -> Srv_dispatch.t
(** The underlying server (created on first use). *)

val exec_line : env -> string -> (unit, string) result

val run : env -> string -> (unit, string) result
(** Execute a whole script; stops at the first failing directive with
    ["line N: ..."]. *)
