(** Deterministic closed-loop workload driver for the concurrency
    server.

    Every random choice flows through a seeded {!Prng}, and time is the
    virtual clock: the driver submits bursts of lens invocations,
    advances the clock by think-time gaps between bursts (letting
    engines drain and queues shed), then drains the server.  Equal
    seeds against equal systems produce byte-identical outcome
    streams. *)

type spec = {
  seed : int;
  requests : int;                      (** total submissions *)
  burst : int;                         (** submissions per arrival instant *)
  think_ms : float;                    (** mean inter-burst clock advance *)
  sessions : string list;              (** open session names, round-robin *)
  targets : (string * string) list;    (** (lens, query) pool *)
  params : (string * string list) list;(** arg name -> value pool *)
}

val demo_spec : spec
(** 24 requests in bursts of 3 against {!demo_system}'s lenses and
    sessions, seed 42. *)

type summary = {
  ws_submitted : int;
  ws_completed : int;
  ws_rejected : int;
  ws_plan_hits : int;
  ws_queue_wait_ms : float;   (** summed over completed requests *)
  ws_elapsed_ms : float;      (** virtual time from first submit to drain *)
}

val run : Srv_dispatch.t -> spec -> summary
(** Submits, advances, drains; counts only this run's requests.
    Sessions named by the spec must already be open. *)

val summary_line : summary -> string

val demo_system : unit -> Nimble.t
(** The CLI's demo federation (crm customers/orders plus an XML product
    catalog) with three users (admin/alice/bob) and two parameterized
    lenses ([sales], [catalog]) — the fixture behind [nimble_cli serve],
    the repl's [\serve], bench E15 and the server tests. *)

val demo_users : (string * string) list
(** (user, password) pairs of {!demo_system}, admin first. *)

val install_demo : Nimble.t -> unit
(** Add the demo users and lenses to an existing system whose sources
    export [crm.customers], [crm.orders] and [products.catalog] — the
    [demo] directive of {!Srv_script}. *)
