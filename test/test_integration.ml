(* End-to-end walkthrough: one federation exercising every subsystem the
   paper describes, with assertions on the cross-subsystem interactions
   (views over cleaned sources, materialized union views, lenses over
   hierarchies, cache vs refresh, partial results mid-scenario). *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let ok = function
  | Ok v -> v
  | Error m -> Alcotest.failf "unexpected error: %s" m

(* The federation: two regional CRMs (one flaky), a product catalog, a
   legacy CSV dump. *)
let build () =
  let west = Rel_db.create ~name:"west" () in
  List.iter
    (fun s -> ignore (Rel_db.exec west s))
    [
      "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, tier INT)";
      "CREATE TABLE orders (oid INT PRIMARY KEY, cust_id INT, sku TEXT, amount FLOAT)";
      "INSERT INTO customers VALUES (1, 'Acme Corporation', 1), (2, 'Initech', 2)";
      "INSERT INTO orders VALUES (10, 1, 'W1', 100.0), (11, 1, 'W2', 50.0), (12, 2, 'W1', 75.0)";
    ];
  let east = Rel_db.create ~name:"east" () in
  List.iter
    (fun s -> ignore (Rel_db.exec east s))
    [
      "CREATE TABLE accounts (acct INT PRIMARY KEY, company TEXT, level INT)";
      "INSERT INTO accounts VALUES (501, 'ACME Corp.', 1), (502, 'Globex', 3)";
    ];
  let catalog =
    Xml_source.of_xml_strings ~name:"products"
      [
        ( "catalog",
          {|<catalog><product sku="W1"><price>25</price></product>
            <product sku="W2"><price>10</price></product></catalog>|} );
      ]
  in
  let legacy =
    Csv_source.make ~name:"legacy"
      [ ("notes", "company,note\nAcme Corporation,prefers email\nGlobex,call first\n") ]
  in
  let sys = Nimble.create ~cache_capacity:16 () in
  ok (Nimble.register_source sys (Rel_source.make west));
  ok (Nimble.register_source sys (Rel_source.make east));
  ok (Nimble.register_source sys catalog);
  ok (Nimble.register_source sys legacy);
  (sys, west)

let test_full_walkthrough () =
  let sys, west_db = build () in

  (* 1. A union mediated schema over the two CRMs. *)
  ok
    (Nimble.define_view sys ~description:"both CRMs, one shape" "all_customers"
       {|WHERE <row><id>$k</id><name>$n</name><tier>$t</tier></row> IN "west.customers"
         CONSTRUCT <customer src="west"><key>$k</key><name>$n</name><tier>$t</tier></customer>
         UNION
         WHERE <row><acct>$k</acct><company>$n</company><level>$t</level></row> IN "east.accounts"
         CONSTRUCT <customer src="east"><key>$k</key><name>$n</name><tier>$t</tier></customer>|});

  (* 2. A hierarchical view over the union: premium customers only. *)
  ok
    (Nimble.define_view sys "premium"
       {|WHERE <customer><name>$n</name><tier>$t</tier></customer> IN "all_customers", $t = 1
         CONSTRUCT <vip>$n</vip>|});
  check int_t "view depth" 2 (Med_catalog.view_depth (Nimble.catalog sys) "premium");
  let vips = ok (Nimble.query sys {|WHERE <vip>$n</vip> IN "premium" CONSTRUCT <v>$n</v>|}) in
  check int_t "two tier-1 across CRMs" 2 (List.length vips);

  (* 3. A cleaned source canonicalizing the union (Acme appears twice). *)
  let flow =
    {
      Cl_flow.flow_name = "canon";
      steps =
        [
          Cl_flow.Derive { field = "norm"; from_field = "name"; normalizer = "name" };
          Cl_flow.Dedupe
            {
              match_field = "norm"; blocking_fields = [ "norm" ]; measure = "jaro_winkler";
              same_above = 0.9; different_below = 0.6; window = 4;
            };
        ];
    }
  in
  ok
    (Nimble.register_cleaned_source sys ~name:"entities" ~key_field:"name" ~flow
       ~from_query:
         {|WHERE <customer><name>$n</name></customer> IN "all_customers"
           CONSTRUCT <r><name>$n</name></r>|});
  let entities =
    ok (Nimble.query sys {|WHERE <row><name>$n</name></row> IN "entities" CONSTRUCT <e>$n</e>|})
  in
  check int_t "4 raw customers -> 3 entities" 3 (List.length entities);

  (* 4. A view over the cleaned source (views compose over cleaners). *)
  ok
    (Nimble.define_view sys "entity_names"
       {|WHERE <row><name>$n</name></row> IN "entities" CONSTRUCT <name>$n</name>|});
  check int_t "view over cleaned source" 3
    (List.length (ok (Nimble.query sys {|WHERE <name>$n</name> IN "entity_names" CONSTRUCT <x>$n</x>|})));

  (* 5. Cross-source join: orders x catalog prices, through the engine. *)
  let margin_query =
    {|WHERE <row><cust_id>$c</cust_id><sku>$s</sku><amount>$a</amount></row> IN "west.orders",
           <product sku=$s><price>$p</price></product> IN "products.catalog"
      CONSTRUCT <line><sku>$s</sku><amt>$a</amt><unit>$p</unit></line>|}
  in
  check int_t "three priced orders" 3 (List.length (ok (Nimble.query sys margin_query)));

  (* 6. Materialize the union view with periodic refresh; updates appear
     only after the policy fires. *)
  ok (Nimble.materialize_view sys ~policy:(Mat_store.Every_n_queries 4) "all_customers");
  let count_customers () =
    List.length
      (ok (Nimble.query sys {|WHERE <customer><key>$k</key></customer> IN "all_customers" CONSTRUCT <k>$k</k>|}))
  in
  check int_t "copy serves four" 4 (count_customers ());
  ignore (Rel_db.exec west_db "INSERT INTO customers VALUES (3, 'Hooli', 1)");
  ignore (Nimble.invalidate_source sys "west");
  check bool_t "stale until policy fires" true (count_customers () = 4);
  (* burn queries to trigger the refresh *)
  ignore (Nimble.invalidate_source sys "west");
  for _ = 1 to 4 do
    ignore (count_customers ());
    ignore (Nimble.invalidate_source sys "west")
  done;
  check int_t "fresh after periodic refresh" 5 (count_customers ());

  (* 7. A lens for the support team over the legacy notes. *)
  ok (Nimble.add_user sys ~role:Fe_auth.Analyst "sue" "pw");
  let lens =
    Fe_lens.make ~name:"notes" ~required_role:Fe_auth.Analyst ~device:Fe_format.Text
      ~params:[ Fe_lens.param "who" Value.TString ]
      [
        ( "lookup",
          {|WHERE <row><company>%who%</company><note>$n</note></row> IN "legacy.notes"
            CONSTRUCT <note>$n</note>|} );
      ]
  in
  ok (Nimble.add_lens sys lens);
  let rendered =
    ok
      (Nimble.run_lens sys ~user:"sue" ~password:"pw" ~lens:"notes" ~query:"lookup"
         [ ("who", "Globex") ])
  in
  check bool_t "note found through lens" true (contains rendered "call first");

  (* 8. Save the whole layer and replay it on a fresh system. *)
  let script = Nimble.save_config sys in
  let sys2, _ = build () in
  (* Cleaned sources are code-level; re-register before replay. *)
  ok
    (Nimble.register_cleaned_source sys2 ~name:"entities" ~key_field:"name" ~flow
       ~from_query:
         {|WHERE <customer><name>$n</name></customer> IN "all_customers"
           CONSTRUCT <r><name>$n</name></r>|});
  ok (Nimble.load_config sys2 script);
  check int_t "replayed hierarchy answers" 2
    (List.length (ok (Nimble.query sys2 {|WHERE <vip>$n</vip> IN "premium" CONSTRUCT <v>$n</v>|})));

  (* 9. The management report reflects all of it. *)
  let rep = Nimble.report sys in
  List.iter
    (fun needle -> check bool_t ("report mentions " ^ needle) true (contains rep needle))
    [ "west"; "east"; "products"; "legacy"; "entities"; "all_customers"; "premium"; "result cache" ]

let test_compiled_reference_agreement_whole_scenario () =
  (* The oracle property over the walkthrough federation's views. *)
  let sys, _ = build () in
  ok
    (Nimble.define_view sys "all_customers"
       {|WHERE <row><id>$k</id><name>$n</name><tier>$t</tier></row> IN "west.customers"
         CONSTRUCT <customer><key>$k</key><name>$n</name><tier>$t</tier></customer>
         UNION
         WHERE <row><acct>$k</acct><company>$n</company><level>$t</level></row> IN "east.accounts"
         CONSTRUCT <customer><key>$k</key><name>$n</name><tier>$t</tier></customer>|});
  let cat = Nimble.catalog sys in
  List.iter
    (fun text ->
      let q = Xq_parser.parse_exn text in
      let compiled = Med_exec.run cat q in
      let reference = Xq_eval.eval (Med_exec.direct_resolver cat) q in
      let norm ts = List.sort compare (List.map Dtree.to_string ts) in
      check bool_t ("agrees: " ^ text) true (norm compiled = norm reference))
    [
      {|WHERE <customer><tier>$t</tier><name>$n</name></customer> IN "all_customers", $t < 3 CONSTRUCT <c>$n</c>|};
      {|WHERE <row><sku>$s</sku></row> IN "west.orders", <product sku=$s><price>$p</price></product> IN "products.catalog" CONSTRUCT <x><s>$s</s><p>$p</p></x>|};
      {|WHERE <row><company>$c</company></row> IN "legacy.notes" CONSTRUCT <c>$c</c>|};
      {|WHERE <customer><key>$k</key></customer> IN "all_customers" CONSTRUCT <k>$k</k> ORDER BY $k DESC LIMIT 3|};
    ]

let () =
  Alcotest.run "integration"
    [
      ( "walkthrough",
        [
          Alcotest.test_case "full scenario" `Quick test_full_walkthrough;
          Alcotest.test_case "oracle agreement across the federation" `Quick
            test_compiled_reference_agreement_whole_scenario;
        ] );
    ]
