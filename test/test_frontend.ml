(* Tests for the front end (formatting, auth, lenses, admin reports) and
   the Nimble facade that ties the whole system together. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let string_t = Alcotest.string

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let sample_trees =
  [
    Dtree.node "customer"
      ~attrs:[ ("id", Value.Int 1) ]
      [ Dtree.leaf "name" (Value.String "Acme & Co"); Dtree.leaf "tier" (Value.Int 1) ];
    Dtree.node "customer"
      ~attrs:[ ("id", Value.Int 2) ]
      [ Dtree.leaf "name" (Value.String "Globex") ];
  ]

(* ------------------------------------------------------------------ *)
(* Formatting                                                          *)
(* ------------------------------------------------------------------ *)

let test_format_web_escapes () =
  let html = Fe_format.render Fe_format.Web sample_trees in
  check bool_t "escaped ampersand" true (contains html "Acme &amp; Co");
  check bool_t "dl structure" true (contains html "<dl class=\"customer\">")

let test_format_text () =
  let text = Fe_format.render Fe_format.Text sample_trees in
  check bool_t "has name line" true (contains text "name: Acme & Co");
  check bool_t "has attr" true (contains text "@id=1")

let test_format_wireless_truncates () =
  let long =
    [ Dtree.node "x" [ Dtree.leaf "f" (Value.String (String.make 100 'z')) ] ]
  in
  let card = Fe_format.render Fe_format.Wireless long in
  check bool_t "truncated" true (String.length card <= 110);
  check string_t "truncate helper" "ab..." (Fe_format.truncate 5 "abcdefgh")

let test_format_xml_roundtrip () =
  let xml = Fe_format.render Fe_format.Raw_xml sample_trees in
  check bool_t "parses back" true
    (match Xml_parser.parse_element ("<r>" ^ xml ^ "</r>") with
    | Ok _ -> true
    | Error _ -> false)

let test_device_names () =
  check bool_t "web" true (Fe_format.device_of_string "web" = Some Fe_format.Web);
  check bool_t "unknown" true (Fe_format.device_of_string "fax" = None);
  check string_t "roundtrip" "wireless" (Fe_format.device_to_string Fe_format.Wireless)

(* ------------------------------------------------------------------ *)
(* Auth                                                                *)
(* ------------------------------------------------------------------ *)

let test_auth_lifecycle () =
  let a = Fe_auth.create () in
  Fe_auth.add_user a ~role:Fe_auth.Admin "root" "s3cret";
  Fe_auth.add_user a "bob" "hunter2";
  check bool_t "good login" true (Fe_auth.authenticate a "root" "s3cret" = Some Fe_auth.Admin);
  check bool_t "bad password" true (Fe_auth.authenticate a "root" "wrong" = None);
  check bool_t "unknown user" true (Fe_auth.authenticate a "eve" "x" = None);
  check bool_t "default role" true (Fe_auth.role_of a "bob" = Some Fe_auth.Viewer);
  Fe_auth.set_role a "bob" Fe_auth.Analyst;
  check bool_t "promoted" true (Fe_auth.role_of a "bob" = Some Fe_auth.Analyst);
  check int_t "user list" 2 (List.length (Fe_auth.users a))

let test_auth_role_lattice () =
  check bool_t "admin covers analyst" true (Fe_auth.role_allows Fe_auth.Analyst Fe_auth.Admin);
  check bool_t "viewer below analyst" false (Fe_auth.role_allows Fe_auth.Analyst Fe_auth.Viewer);
  check bool_t "equal ok" true (Fe_auth.role_allows Fe_auth.Viewer Fe_auth.Viewer)

let test_auth_duplicate () =
  let a = Fe_auth.create () in
  Fe_auth.add_user a "x" "p";
  try
    Fe_auth.add_user a "x" "p2";
    Alcotest.fail "expected Auth_error"
  with Fe_auth.Auth_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Lenses                                                              *)
(* ------------------------------------------------------------------ *)

let lens_fixture () =
  Fe_lens.make ~name:"customer-lookup"
    ~params:[ Fe_lens.param "region" Value.TString; Fe_lens.param ~default:(Value.Int 0) "min_tier" Value.TInt ]
    ~device:Fe_format.Text
    [
      ( "by-region",
        {|WHERE <row><name>$n</name><region>%region%</region><tier>$t</tier></row> IN "crm.customers",
               $t >= %min_tier%
          CONSTRUCT <hit>$n</hit>|} );
    ]

let test_lens_placeholders () =
  check (Alcotest.list string_t) "found" [ "region"; "min_tier" ]
    (Fe_lens.placeholders "a %region% b %min_tier% c %region%")

let test_lens_instantiate () =
  let lens = lens_fixture () in
  let q = Fe_lens.instantiate lens "by-region" [ ("region", "west") ] in
  let text = Xq_pretty.query_to_string q in
  check bool_t "region substituted" true (contains text "west");
  check bool_t "default applied" true (contains text "0")

let test_lens_errors () =
  let lens = lens_fixture () in
  let expect_err f =
    try
      ignore (f ());
      Alcotest.fail "expected Lens_error"
    with Fe_lens.Lens_error _ -> ()
  in
  expect_err (fun () -> Fe_lens.instantiate lens "nope" []);
  expect_err (fun () -> Fe_lens.instantiate lens "by-region" []);
  expect_err (fun () -> Fe_lens.instantiate lens "by-region" [ ("region", "w"); ("min_tier", "xx") ]);
  expect_err (fun () ->
      Fe_lens.make ~name:"bad" [ ("q", "WHERE <a>%undeclared%</a> IN \"s\" CONSTRUCT <x/>") ])

let test_lens_param_shape () =
  let lens = lens_fixture () in
  let shape args = Fe_lens.param_shape lens "by-region" args in
  (* Rebindable values contribute their class only: fresh values share
     the cached plan's shape. *)
  check string_t "same shape across values"
    (shape [ ("region", "west") ])
    (shape [ ("region", "east"); ("min_tier", "7") ]);
  check bool_t "classes, not literals" true
    (contains (shape [ ("region", "west") ]) "region:str");
  (* Non-rebindable values (negatives) inline their literal, splitting
     the shape per value. *)
  let neg = shape [ ("region", "w"); ("min_tier", "-3") ] in
  check bool_t "literal inlined" true (contains neg "min_tier=-3");
  check bool_t "distinct from rebindable shape" true
    (neg <> shape [ ("region", "w"); ("min_tier", "3") ]);
  (* The exact variant inlines everything — one key per valuation. *)
  check bool_t "exact keys differ per value" true
    (Fe_lens.param_shape_exact lens "by-region" [ ("region", "west") ]
    <> Fe_lens.param_shape_exact lens "by-region" [ ("region", "east") ])

let test_lens_rebindable_classes () =
  check bool_t "plain string" true (Fe_lens.rebindable (Value.String "west"));
  check bool_t "backslash string" false (Fe_lens.rebindable (Value.String {|a\b|}));
  check bool_t "non-negative int" true (Fe_lens.rebindable (Value.Int 42));
  check bool_t "negative int" false (Fe_lens.rebindable (Value.Int (-1)));
  check bool_t "bool" false (Fe_lens.rebindable (Value.Bool true));
  check bool_t "null" false (Fe_lens.rebindable Value.Null);
  (* Sentinels exist exactly for rebindable classes. *)
  (match Fe_lens.sentinel_for 0 (Value.String "x") with
  | Value.String _ -> ()
  | _ -> Alcotest.fail "string sentinel keeps its class");
  try
    ignore (Fe_lens.sentinel_for 0 (Value.Bool true));
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Full system through the Nimble facade                               *)
(* ------------------------------------------------------------------ *)

let make_system () =
  let db = Rel_db.create ~name:"crm" () in
  ignore (Rel_db.exec db "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, region TEXT, tier INT)");
  ignore
    (Rel_db.exec db
       "INSERT INTO customers VALUES (1, 'Acme', 'west', 1), (2, 'Globex', 'east', 2), (3, 'Initech', 'west', 3)");
  let sys = Nimble.create ~cache_capacity:8 () in
  (match Nimble.register_source sys (Rel_source.make db) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "register: %s" m);
  (sys, db)

let ok = function
  | Ok v -> v
  | Error m -> Alcotest.failf "unexpected error: %s" m

let test_nimble_query () =
  let sys, _ = make_system () in
  let trees =
    ok
      (Nimble.query sys
         {|WHERE <row><name>$n</name><region>"west"</region></row> IN "crm.customers"
           CONSTRUCT <c>$n</c>|})
  in
  check int_t "two west" 2 (List.length trees)

let test_nimble_error_reporting () =
  let sys, _ = make_system () in
  (match Nimble.query sys "WHERE garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected syntax error");
  match Nimble.query sys {|WHERE <x>$v</x> IN "missing" CONSTRUCT <y>$v</y>|} with
  | Error m -> check bool_t "names the source" true (contains m "missing")
  | Ok _ -> Alcotest.fail "expected unknown-source error"

let test_nimble_cache_serves_repeats () =
  let sys, db = make_system () in
  let text =
    {|WHERE <row><name>$n</name></row> IN "crm.customers" CONSTRUCT <c>$n</c>|}
  in
  ignore (ok (Nimble.query sys text));
  (* Mutate the source: the cached (stale) result is served until
     invalidation — the caching trade-off of section 3.3. *)
  ignore (Rel_db.exec db "INSERT INTO customers VALUES (9, 'Hooli', 'west', 1)");
  check int_t "stale cached answer" 3 (List.length (ok (Nimble.query sys text)));
  check int_t "invalidate by source" 1 (Nimble.invalidate_source sys "crm");
  check int_t "fresh after invalidation" 4 (List.length (ok (Nimble.query sys text)))

let test_nimble_views_and_materialization () =
  let sys, db = make_system () in
  ok
    (Nimble.define_view sys "west"
       {|WHERE <row><name>$n</name><region>"west"</region></row> IN "crm.customers"
         CONSTRUCT <customer><name>$n</name></customer>|});
  ok (Nimble.materialize_view sys "west");
  let q = {|WHERE <customer><name>$n</name></customer> IN "west" CONSTRUCT <w>$n</w>|} in
  check int_t "answered from copy" 2 (List.length (ok (Nimble.query sys q)));
  (* The copy hides source updates until refreshed. *)
  ignore (Rel_db.exec db "INSERT INTO customers VALUES (9, 'Hooli', 'west', 1)");
  ignore (Nimble.invalidate_source sys "crm");
  check int_t "still from stale copy" 2 (List.length (ok (Nimble.query sys q)));
  ok (Nimble.refresh_view sys "west");
  ignore (Nimble.invalidate_source sys "crm");
  check int_t "fresh after view refresh" 3 (List.length (ok (Nimble.query sys q)))

let test_nimble_partial () =
  let sys, _ = make_system () in
  let down, _ =
    Net_sim.wrap { Net_sim.default_profile with Net_sim.availability = 0.0 }
      (Xml_source.of_xml_strings ~name:"ext" [ ("doc", "<d><v>1</v></d>") ])
  in
  ok (Nimble.register_source sys down);
  let text = {|WHERE <v>$x</v> IN "ext.doc" CONSTRUCT <o>$x</o>|} in
  (match Nimble.query sys text with
  | Error m -> check bool_t "strict fails naming source" true (contains m "ext")
  | Ok _ -> Alcotest.fail "expected failure");
  let trees, skipped = ok (Nimble.query_partial sys text) in
  check int_t "empty partial answer" 0 (List.length trees);
  check (Alcotest.list string_t) "skip annotation" [ "ext" ] skipped

let test_nimble_lens_end_to_end () =
  let sys, _ = make_system () in
  ok (Nimble.add_user sys ~role:Fe_auth.Analyst "ann" "pw");
  ok (Nimble.add_user sys "bob" "pw");
  let lens =
    Fe_lens.make ~name:"west-lookup" ~required_role:Fe_auth.Analyst
      ~params:[ Fe_lens.param "region" Value.TString ]
      ~device:Fe_format.Text
      [
        ( "go",
          {|WHERE <row><name>$n</name><region>%region%</region></row> IN "crm.customers"
            CONSTRUCT <hit>$n</hit>|} );
      ]
  in
  ok (Nimble.add_lens sys lens);
  check (Alcotest.list string_t) "lens listed" [ "west-lookup" ] (Nimble.lens_names sys);
  (match
     Nimble.run_lens sys ~user:"ann" ~password:"pw" ~lens:"west-lookup" ~query:"go"
       [ ("region", "west") ]
   with
  | Ok rendered ->
    check bool_t "rendered contains hit" true (contains rendered "Acme")
  | Error m -> Alcotest.failf "lens run failed: %s" m);
  (match
     Nimble.run_lens sys ~user:"bob" ~password:"pw" ~lens:"west-lookup" ~query:"go"
       [ ("region", "west") ]
   with
  | Error m -> check bool_t "role denied" true (contains m "role")
  | Ok _ -> Alcotest.fail "viewer must be denied");
  match
    Nimble.run_lens sys ~user:"ann" ~password:"wrong" ~lens:"west-lookup" ~query:"go" []
  with
  | Error m -> check bool_t "auth denied" true (contains m "authentication")
  | Ok _ -> Alcotest.fail "bad password must be denied"

let test_nimble_explain_and_report () =
  let sys, _ = make_system () in
  ok (Nimble.define_view sys "v" {|WHERE <row><id>$i</id></row> IN "crm.customers" CONSTRUCT <x>$i</x>|});
  ok (Nimble.materialize_view sys "v");
  let plan =
    ok (Nimble.explain sys {|WHERE <row><id>$i</id></row> IN "crm.customers" CONSTRUCT <x>$i</x>|})
  in
  check bool_t "plan mentions SQL" true (contains plan "SQL @crm");
  let rep = Nimble.report sys in
  check bool_t "report sources" true (contains rep "crm");
  check bool_t "report views" true (contains rep "mediated schemas");
  check bool_t "report materialized" true (contains rep "materialized views");
  check bool_t "report cache" true (contains rep "result cache")

let test_nimble_formatted_query () =
  let sys, _ = make_system () in
  let html =
    ok
      (Nimble.query_formatted sys ~device:Fe_format.Web
         {|WHERE <row><name>$n</name></row> IN "crm.customers" CONSTRUCT <c><name>$n</name></c>|})
  in
  check bool_t "html rendered" true (contains html "<dl class=\"c\">")

(* ------------------------------------------------------------------ *)
(* Cleaned sources: dynamic cleaning in the query path                  *)
(* ------------------------------------------------------------------ *)

let make_dirty_system () =
  let db = Rel_db.create ~name:"crm" () in
  ignore (Rel_db.exec db "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, city TEXT)");
  ignore
    (Rel_db.exec db
       "INSERT INTO customers VALUES \
        (1, 'Acme Corporation', 'Seattle'), (2, 'ACME Corp.', NULL), \
        (3, 'Globex', 'NYC'), (4, 'Initech', 'Austin')");
  let sys = Nimble.create ~cache_capacity:0 () in
  ok (Nimble.register_source sys (Rel_source.make db));
  (sys, db)

let dedupe_flow =
  {
    Cl_flow.flow_name = "dedupe";
    steps =
      [
        Cl_flow.Derive { field = "norm"; from_field = "name"; normalizer = "name" };
        Cl_flow.Dedupe
          {
            match_field = "norm";
            blocking_fields = [ "norm" ];
            measure = "jaro_winkler";
            same_above = 0.9;
            different_below = 0.6;
            window = 4;
          };
      ];
  }

let test_cleaned_source_dedupes_at_query_time () =
  let sys, db = make_dirty_system () in
  ok
    (Nimble.register_cleaned_source sys ~name:"clean_customers" ~key_field:"id"
       ~flow:dedupe_flow
       ~from_query:
         {|WHERE <row><id>$i</id><name>$n</name><city>$c</city></row> IN "crm.customers"
           CONSTRUCT <r><id>$i</id><name>$n</name><city>$c</city></r>|});
  let q = {|WHERE <row><name>$n</name></row> IN "clean_customers" CONSTRUCT <c>$n</c>|} in
  let trees = ok (Nimble.query sys q) in
  check int_t "duplicates merged away" 3 (List.length trees);
  (* Dynamic: a new duplicate in the source is cleaned on the next query
     without any reload step. *)
  ignore (Rel_db.exec db "INSERT INTO customers VALUES (5, 'GLOBEX', 'New York')");
  let trees = ok (Nimble.query sys q) in
  check int_t "fresh duplicate also merged" 3 (List.length trees)

let test_cleaned_source_merge_unions_fields () =
  let sys, _ = make_dirty_system () in
  ok
    (Nimble.register_cleaned_source sys ~name:"clean_customers" ~key_field:"id"
       ~flow:dedupe_flow
       ~from_query:
         {|WHERE <row><id>$i</id><name>$n</name><city>$c</city></row> IN "crm.customers"
           CONSTRUCT <r><id>$i</id><name>$n</name><city>$c</city></r>|});
  let trees =
    ok
      (Nimble.query sys
         {|WHERE <row><name>$n</name><city>$c</city></row> IN "clean_customers",
               $n LIKE '%Acme%'
           CONSTRUCT <acme><city>$c</city></acme>|})
  in
  (* The merged Acme record keeps the non-null Seattle city. *)
  check int_t "one acme entity" 1 (List.length trees);
  check bool_t "field union kept the city" true
    (contains (Dtree.text (List.hd trees)) "Seattle")

let test_cleaned_source_lineage_and_resolution () =
  let sys, _ = make_dirty_system () in
  ok
    (Nimble.register_cleaned_source sys ~name:"clean_customers" ~key_field:"id"
       ~flow:dedupe_flow
       ~from_query:
         {|WHERE <row><id>$i</id><name>$n</name></row> IN "crm.customers"
           CONSTRUCT <r><id>$i</id><name>$n</name></r>|});
  ignore (ok (Nimble.query sys {|WHERE <row><name>$n</name></row> IN "clean_customers" CONSTRUCT <c>$n</c>|}));
  (match Nimble.cleaning_lineage sys "clean_customers" with
  | Some lin -> check bool_t "merge recorded" true (Cl_lineage.size lin >= 1)
  | None -> Alcotest.fail "expected lineage store");
  (* Force a human decision: split the Acme pair apart and re-query. *)
  ok (Nimble.resolve_match sys "clean_customers" Cl_concordance.Different "1" "2");
  let trees =
    ok (Nimble.query sys {|WHERE <row><name>$n</name></row> IN "clean_customers" CONSTRUCT <c>$n</c>|})
  in
  check int_t "human decision splits the merge" 4 (List.length trees)

let test_cleaned_source_cache_invalidation () =
  (* Regression: invalidate_source on a base source must drop cached
     results over cleaned sources that read it. *)
  let db = Rel_db.create ~name:"crm" () in
  ignore (Rel_db.exec db "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, city TEXT)");
  ignore (Rel_db.exec db "INSERT INTO customers VALUES (1, 'Acme', 'SEA')");
  let sys = Nimble.create ~cache_capacity:8 () in
  ok (Nimble.register_source sys (Rel_source.make db));
  ok
    (Nimble.register_cleaned_source sys ~name:"clean" ~key_field:"id" ~flow:dedupe_flow
       ~from_query:
         {|WHERE <row><id>$i</id><name>$n</name></row> IN "crm.customers"
           CONSTRUCT <r><id>$i</id><name>$n</name></r>|});
  let q = {|WHERE <row><name>$n</name></row> IN "clean" CONSTRUCT <c>$n</c>|} in
  check int_t "one entity cached" 1 (List.length (ok (Nimble.query sys q)));
  ignore (Rel_db.exec db "INSERT INTO customers VALUES (2, 'Globex', 'NYC')");
  check bool_t "invalidation reaches through the cleaner" true
    (Nimble.invalidate_source sys "crm" >= 1);
  check int_t "fresh after invalidation" 2 (List.length (ok (Nimble.query sys q)))

let test_drop_view_refused_keeps_materialization () =
  (* Regression: a drop refused for dependents must not dematerialize. *)
  let sys, _ = make_system () in
  ok
    (Nimble.define_view sys "base"
       {|WHERE <row><name>$n</name></row> IN "crm.customers" CONSTRUCT <b>$n</b>|});
  ok
    (Nimble.define_view sys "derived"
       {|WHERE <b>$n</b> IN "base" CONSTRUCT <d>$n</d>|});
  ok (Nimble.materialize_view sys "base");
  (match Nimble.drop_view sys "base" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "drop must be refused (dependent view)");
  check bool_t "copy survives refused drop" true
    (Mat_store.peek (Nimble.store sys) "base" <> None)

let test_cleaned_source_unknown () =
  let sys, _ = make_dirty_system () in
  check (Alcotest.list (Alcotest.pair string_t string_t)) "no exceptions for unknown" []
    (Nimble.cleaning_exceptions sys "nope");
  match Nimble.resolve_match sys "nope" Cl_concordance.Same "a" "b" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected error for unknown cleaned source"

(* ------------------------------------------------------------------ *)
(* Configuration scripts                                                *)
(* ------------------------------------------------------------------ *)

let test_config_roundtrip () =
  let sys, _ = make_system () in
  ok
    (Nimble.define_view sys ~description:"west side" "west"
       {|WHERE <row><name>$n</name><region>"west"</region></row> IN "crm.customers"
         CONSTRUCT <customer><name>$n</name></customer>|});
  ok
    (Nimble.define_view sys "west_names"
       {|WHERE <customer><name>$n</name></customer> IN "west" CONSTRUCT <n>$n</n>|});
  ok (Nimble.materialize_view sys ~policy:(Mat_store.Every_n_queries 10) "west");
  let script = Nimble.save_config sys in
  check bool_t "script has view" true (contains script "view west :=");
  check bool_t "script has description" true (contains script "describe west west side");
  check bool_t "script has policy" true (contains script "materialize west every:10");
  (* Replay into a fresh system with the same sources. *)
  let sys2, _ = make_system () in
  ok (Nimble.load_config sys2 script);
  check bool_t "views recreated" true
    (Med_catalog.find_view (Nimble.catalog sys2) "west_names" <> None);
  (match Med_catalog.find_view (Nimble.catalog sys2) "west" with
  | Some v -> check string_t "description restored" "west side" v.Med_catalog.description
  | None -> Alcotest.fail "expected view");
  (match Mat_store.peek (Nimble.store sys2) "west" with
  | Some e ->
    check bool_t "policy restored" true (e.Mat_store.policy = Mat_store.Every_n_queries 10)
  | None -> Alcotest.fail "expected materialization");
  let q = {|WHERE <n>$x</n> IN "west_names" CONSTRUCT <o>$x</o>|} in
  check int_t "replayed system answers" (List.length (ok (Nimble.query sys q)))
    (List.length (ok (Nimble.query sys2 q)))

let test_config_union_view_roundtrip () =
  let sys, _ = make_system () in
  ok
    (Nimble.define_view sys "both"
       {|WHERE <row><name>$n</name><region>"west"</region></row> IN "crm.customers"
         CONSTRUCT <p>$n</p>
         UNION
         WHERE <row><name>$n</name><region>"east"</region></row> IN "crm.customers"
         CONSTRUCT <p>$n</p>|});
  let script = Nimble.save_config sys in
  let sys2, _ = make_system () in
  ok (Nimble.load_config sys2 script);
  match Med_catalog.find_view (Nimble.catalog sys2) "both" with
  | Some v -> check int_t "union survives roundtrip" 2 (List.length v.Med_catalog.definitions)
  | None -> Alcotest.fail "expected union view"

let test_config_errors () =
  let sys, _ = make_system () in
  (match Nimble.load_config sys "bogus directive" with
  | Error m -> check bool_t "reports directive" true (contains m "bogus")
  | Ok () -> Alcotest.fail "expected error");
  (match Nimble.load_config sys "view broken := WHERE nope" with
  | Error m -> check bool_t "reports view name" true (contains m "broken")
  | Ok () -> Alcotest.fail "expected error");
  match Nimble.load_config sys "# just a comment\n\n" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "comments should be fine: %s" m

let () =
  Alcotest.run "frontend"
    [
      ( "format",
        [
          Alcotest.test_case "web escaping" `Quick test_format_web_escapes;
          Alcotest.test_case "text" `Quick test_format_text;
          Alcotest.test_case "wireless truncation" `Quick test_format_wireless_truncates;
          Alcotest.test_case "xml roundtrip" `Quick test_format_xml_roundtrip;
          Alcotest.test_case "device names" `Quick test_device_names;
        ] );
      ( "auth",
        [
          Alcotest.test_case "lifecycle" `Quick test_auth_lifecycle;
          Alcotest.test_case "role lattice" `Quick test_auth_role_lattice;
          Alcotest.test_case "duplicates" `Quick test_auth_duplicate;
        ] );
      ( "lens",
        [
          Alcotest.test_case "placeholders" `Quick test_lens_placeholders;
          Alcotest.test_case "instantiate" `Quick test_lens_instantiate;
          Alcotest.test_case "errors" `Quick test_lens_errors;
          Alcotest.test_case "param shapes" `Quick test_lens_param_shape;
          Alcotest.test_case "rebindable classes" `Quick test_lens_rebindable_classes;
        ] );
      ( "nimble",
        [
          Alcotest.test_case "query" `Quick test_nimble_query;
          Alcotest.test_case "error reporting" `Quick test_nimble_error_reporting;
          Alcotest.test_case "cache + invalidation" `Quick test_nimble_cache_serves_repeats;
          Alcotest.test_case "views + materialization" `Quick test_nimble_views_and_materialization;
          Alcotest.test_case "partial results" `Quick test_nimble_partial;
          Alcotest.test_case "lens end to end" `Quick test_nimble_lens_end_to_end;
          Alcotest.test_case "explain + report" `Quick test_nimble_explain_and_report;
          Alcotest.test_case "formatted query" `Quick test_nimble_formatted_query;
        ] );
      ( "cleaned-sources",
        [
          Alcotest.test_case "dedupes at query time" `Quick
            test_cleaned_source_dedupes_at_query_time;
          Alcotest.test_case "merge unions fields" `Quick
            test_cleaned_source_merge_unions_fields;
          Alcotest.test_case "lineage + human resolution" `Quick
            test_cleaned_source_lineage_and_resolution;
          Alcotest.test_case "unknown source handling" `Quick test_cleaned_source_unknown;
          Alcotest.test_case "cache invalidation through cleaner" `Quick
            test_cleaned_source_cache_invalidation;
          Alcotest.test_case "refused drop keeps materialization" `Quick
            test_drop_view_refused_keeps_materialization;
        ] );
      ( "config",
        [
          Alcotest.test_case "save/load roundtrip" `Quick test_config_roundtrip;
          Alcotest.test_case "union view roundtrip" `Quick test_config_union_view_roundtrip;
          Alcotest.test_case "error reporting" `Quick test_config_errors;
        ] );
    ]
