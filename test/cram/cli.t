The CLI ships a built-in demo federation so every subcommand works
without configuration.

  $ export NIMBLE=../../bin/nimble_cli.exe

A simple query over the demo CRM:

  $ $NIMBLE query 'WHERE <row><name>$n</name></row> IN "crm.customers" CONSTRUCT <c>$n</c>'
  c: Acme
  c: Globex
  c: Initech
  

Explain shows the SQL fragment pushed into the source:

  $ $NIMBLE explain 'WHERE <row><name>$n</name><tier>$t</tier></row> IN "crm.customers", $t = 2 CONSTRUCT <c>$n</c>'
  SCAN a0 AS $*
  accesses:
    a0 -> SQL @crm: SELECT name, tier FROM customers WHERE tier = 2

A cross-source join, rendered for the web:

  $ $NIMBLE query --device web 'WHERE <row><item>$s</item><amount>$a</amount></row> IN "crm.orders", <product sku=$s><price>$p</price></product> IN "products.catalog" CONSTRUCT <line><sku>$s</sku><amt>$a</amt></line>'
  <div class="results">
  <dl class="line"><dt>sku</dt><dd>widget</dd><dt>amt</dt><dd>250.0</dd></dl>
  <dl class="line"><dt>sku</dt><dd>server</dd><dt>amt</dt><dd>9000.0</dd></dl>
  <dl class="line"><dt>sku</dt><dd>widget</dd><dt>amt</dt><dd>120.0</dd></dl>
  </div>

The status report lists sources and their capabilities:

  $ $NIMBLE report
  === Nimble system status ===
  sources:
    crm              relational select+project+join+agg+path exports: customers, orders
    products         xml        select+path                  exports: catalog
  mediated schemas:
  materialized views (clock=0, storage=0 nodes):
  result cache: 0/64 entries, hits=0 misses=0 evictions=0 expirations=0 invalidations=0 (hit rate 0.0%)

Errors are reported, not crashed on:

  $ $NIMBLE query 'WHERE <x>$v</x> IN "missing" CONSTRUCT <y/>' 2>&1 | head -1
  nimble: planning: unknown source or view "missing"

A CSV file becomes a queryable source:

  $ cat > contacts.csv <<'CSV'
  > name,email
  > Ann,ann@example.com
  > Bob,bob@example.com
  > CSV
  $ $NIMBLE query --csv book=contacts.csv 'WHERE <row><email>$e</email></row> IN "book.contacts" CONSTRUCT <e>$e</e>'
  e: ann@example.com
  e: bob@example.com
  

The repl defines and queries views interactively:

  $ printf '\\define v := WHERE <row><name>$n</name><tier>$t</tier></row> IN "crm.customers", $t >= 2 CONSTRUCT <cust><name>$n</name></cust>\nWHERE <cust><name>$n</name></cust> IN "v" CONSTRUCT <hit>$n</hit>;\n\\quit\n' | $NIMBLE repl
  nimble repl — 2 source(s) registered, \help for commands
  nimble> defined view v
  nimble> hit: Globex
  hit: Initech
  nimble> 
