The concurrency server: scripted request files against the built-in
demo federation.  Everything runs on the virtual clock, so queue waits,
engine assignment, shedding and plan-cache behavior are byte-for-byte
deterministic.

  $ export NIMBLE=../../bin/nimble_cli.exe

Two engines, a parameterized lens: repeated shapes hit the plan cache
(req 1 re-binds req 0's plan to a fresh region), bob's viewer role is
denied the analyst lens, and the load balancer splits work evenly:

  $ cat > basic.serve <<'EOF'
  > demo
  > config engines=2 queue=8 inflight=4 overhead=2.0
  > open alice wonder
  > open bob builder
  > request alice sales by_region region=west
  > request alice sales by_region region=east
  > request alice sales big_orders min=100
  > request bob catalog all
  > request bob sales by_region region=west
  > drain
  > cache
  > engines
  > sessions
  > EOF
  $ $NIMBLE serve basic.serve
  demo users and lenses installed
  session alice open (analyst)
  session bob open (viewer)
  req 0 alice sales.by_region ok engine=0 wait=0.00 plan=miss service=2.00 rows=2
  req 1 alice sales.by_region ok engine=1 wait=0.00 plan=hit service=2.00 rows=1
  req 4 rejected: denied: lens "sales" requires role analyst; "bob" has viewer
  req 3 bob catalog.all ok engine=0 wait=2.00 plan=miss service=2.00 rows=2
  req 2 alice sales.big_orders ok engine=1 wait=2.00 plan=miss service=2.00 rows=3
  plan cache: size=3/32 hits=1 misses=3 evictions=0 invalidations=0 fallbacks=0
    param sales/big_orders?min:int  sources=crm
    param catalog/all?  sources=products
    param sales/by_region?region:str  sources=crm
  engine 0: served=2 busy=4.00ms
  engine 1: served=2 busy=4.00ms
  alice (analyst): submitted=3 completed=3 rejected=0 in-flight=0
  bob (viewer): submitted=2 completed=1 rejected=1 in-flight=0

Deterministic load shedding: one slow engine, a two-slot queue.  The
burst admits two waiters and sheds the rest as overloaded — the same
two every run.  A queued request whose deadline passes expires at
dispatch time instead of running late:

  $ cat > shed.serve <<'EOF'
  > demo
  > config engines=1 queue=2 inflight=4 overhead=5.0
  > open alice wonder
  > request alice sales by_region region=west
  > request alice sales by_region region=east
  > request alice sales by_region region=north !deadline=3
  > request alice sales by_region region=south
  > request alice catalog all
  > drain
  > queue
  > EOF
  $ $NIMBLE serve shed.serve
  demo users and lenses installed
  session alice open (analyst)
  req 0 alice sales.by_region ok engine=0 wait=0.00 plan=miss service=5.00 rows=2
  req 3 rejected: overloaded: admission queue full
  req 4 rejected: overloaded: admission queue full
  req 1 alice sales.by_region ok engine=0 wait=5.00 plan=hit service=5.00 rows=1
  req 2 rejected: expired: queued past deadline
  queue: depth=0/2 admitted=3 shed=3 (overload=2 saturated=0 expired=1)

Partial-failure semantics survive dispatch: with the products source
offline, a strict request fails while a partial one completes and
reports what it skipped.  Catalog invalidation drops the cached plans
that depend on the mutated source (and only those).  The first
catalog request also builds the products path index mid-run, moving
the index epoch, so the next catalog request recompiles once (the
extra miss below) to plan with index-backed estimates:

  $ cat > partial.serve <<'EOF'
  > demo
  > open admin secret
  > request admin sales by_region region=west
  > request admin catalog all
  > drain
  > offline products
  > request admin catalog all
  > request admin catalog all !mode=partial
  > drain
  > online products
  > invalidate products
  > cache
  > EOF
  $ $NIMBLE serve partial.serve
  demo users and lenses installed
  session admin open (admin)
  req 0 admin sales.by_region ok engine=0 wait=0.00 plan=miss service=1.00 rows=2
  req 1 admin catalog.all ok engine=1 wait=0.00 plan=miss service=1.00 rows=2
  source products offline
  req 2 rejected: failed: source products is unavailable
  req 3 admin catalog.all ok engine=0 wait=1.00 plan=hit service=1.00 rows=0 skipped=products
  source products online
  invalidated products (dropped 0 cached results)
  plan cache: size=1/32 hits=1 misses=3 evictions=0 invalidations=2 fallbacks=0
    param sales/by_region?region:str  sources=crm
