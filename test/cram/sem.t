Semantic caching from the CLI: cached extents answer contained
predicates without contacting the source, and overlapping predicates
ship only the remainder.

  $ export NIMBLE=../../bin/nimble_cli.exe

The --sem-cache flag budgets the cache in bytes; answers are the same
as without it:

  $ $NIMBLE query --sem-cache 65536 'WHERE <row><id>$i</id><name>$n</name></row> IN "crm.customers", $i <= 3 CONSTRUCT <c>$n</c>'
  c: Acme
  c: Globex
  c: Initech
  

EXPLAIN ANALYZE tags each access with the cache's verdict: the first
run misses (and admits the extent), the repeat full-hits and ships
nothing:

  $ $NIMBLE explain-analyze --sem-cache 65536 --repeat 2 'WHERE <row><id>$i</id><name>$n</name></row> IN "crm.customers", $i <= 3 CONSTRUCT <c><i>$i</i><n>$n</n></c>' | grep -E 'a[0-9] ->' | sed -E 's/time=[0-9.]+ms/time=_/'
    a0 -> SQL @crm: SELECT id, name FROM customers WHERE id <= 3  [est=1000 calls=1 rows=3 time=_ sem=miss]
    a0 -> SQL @crm: SELECT id, name FROM customers WHERE id <= 3  [est=3 calls=1 rows=3 time=_ sem=hit local=3]

The repl's \sem command inspects and budgets the cache.  A narrow
query warms it; widening the predicate is a partial hit — the probe
answers from the extent and only the remainder ships, visible in the
analyzed access line:

  $ $NIMBLE repl <<'EOF' | sed -E 's/[0-9]+\.[0-9]+ms/_/g'
  > \sem
  > \sem budget 65536
  > WHERE <row><id>$i</id><name>$n</name></row> IN "crm.customers", $i <= 2 CONSTRUCT <c>$n</c>;
  > \analyze WHERE <row><id>$i</id><name>$n</name></row> IN "crm.customers", $i <= 3 CONSTRUCT <c>$n</c>
  > \sem
  > \quit
  > EOF
  nimble repl — 2 source(s) registered, \help for commands
  nimble> semantic cache: off
  nimble> semantic cache: 0 entries, 0/65536 bytes / hits=0 partial=0 miss=0 / rows local=0 shipped=0 / admitted=0 evicted=0 invalidated=0 fallbacks=0 view_hits=0
  nimble> c: Acme
  c: Globex
  nimble> SCAN a0 AS $*  (est 1000 rows, actual 3 rows, _)
  accesses:
    a0 -> SQL @crm: SELECT id, name FROM customers WHERE id <= 3  [est=1000 calls=1 rows=3 time=_ sem=partial local=2 shipped=1 remainder="SELECT id, name FROM customers WHERE id <= 3 AND (NOT id <= 2 OR id IS NULL)"]
  -- 3 rows in _ (virtual _)
  nimble> semantic cache: 2 entries, 257/65536 bytes / hits=0 partial=1 miss=1 / rows local=2 shipped=3 / admitted=2 evicted=0 invalidated=0 fallbacks=0 view_hits=0
  nimble> 

Two-level invalidation: mutating a source drops its semantic-cache
extents along with the server's cached plans, so the next request
recomputes.  (The server report prints the semantic cache line only
when the cache is on.)

  $ cat > sem.serve <<'EOF'
  > demo
  > open alice wonder
  > request alice sales big_orders min=100
  > drain
  > request alice sales big_orders min=200
  > drain
  > invalidate crm
  > request alice sales big_orders min=200
  > drain
  > report
  > EOF
  $ $NIMBLE serve --sem-cache 65536 sem.serve
  demo users and lenses installed
  session alice open (analyst)
  req 0 alice sales.big_orders ok engine=0 wait=0.00 plan=miss service=1.00 rows=3
  req 1 alice sales.big_orders ok engine=1 wait=0.00 plan=hit service=1.00 rows=2
  invalidated crm (dropped 0 cached results)
  req 2 alice sales.big_orders ok engine=0 wait=1.00 plan=miss service=1.00 rows=2
  server: engines=2 overhead=1.0ms
  queue: depth=0/8 admitted=3 shed=0 (overload=0 saturated=0 expired=0)
  plan cache: size=1/32 hits=1 misses=2 evictions=0 invalidations=1 fallbacks=0
    param sales/big_orders?min:int  sources=crm
  semantic cache: 1 entries, 112/65536 bytes / hits=1 partial=0 miss=2 / rows local=2 shipped=5 / admitted=2 evicted=0 invalidated=1 fallbacks=0 view_hits=0
  engine 0: served=2 busy=2.00ms
  engine 1: served=1 busy=1.00ms
  alice (analyst): submitted=3 completed=3 rejected=0 in-flight=0
  req 0 alice sales.big_orders ok engine=0 wait=0.00 plan=miss service=1.00 rows=3
  req 1 alice sales.big_orders ok engine=1 wait=0.00 plan=hit service=1.00 rows=2
  req 2 alice sales.big_orders ok engine=0 wait=1.00 plan=miss service=1.00 rows=2
