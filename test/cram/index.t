The path & value index subsystem: structural-summary guides over XML
stores and materialized views, probed by every engine with a guaranteed
walker fallback.  Answers are byte-identical with indexes off, auto or
eager — indexing is a throughput knob with optimizer visibility.

  $ export NIMBLE=../../bin/nimble_cli.exe
  $ Q='WHERE <product sku=$s><price>$p</price></product> IN "products", $p < 100 CONSTRUCT <r><s>$s</s><p>$p</p></r>'

  $ $NIMBLE query "$Q" > auto.out
  $ $NIMBLE query --index off "$Q" > off.out
  $ $NIMBLE query --index eager "$Q" > eager.out
  $ cmp auto.out off.out && cmp auto.out eager.out && cat auto.out
  r
    s: widget
    p: 25
  

The mode must be known:

  $ $NIMBLE query --index sometimes "$Q"
  nimble: unknown index mode "sometimes" (expected auto, off or eager)
  [124]

Under --index eager the guides exist at compile time, so the optimizer
estimates path accesses from exact index counts instead of the blind
default, and EXPLAIN ANALYZE attributes the access's bindings to index
probes (the value probe answers the @sku/price lookup):

  $ $NIMBLE explain-analyze --index eager "$Q" | sed -E -e 's/[0-9]+\.[0-9]+ms/_ms/g'
  SELECT ($p < 100)  (est 1 rows, actual 1 rows, _ms)
    SCAN a0 AS $*  (est 2 rows, actual 2 rows, _ms)
  accesses:
    a0 -> PATH @products.catalog: /descendant-or-self::product[@sku][price] then match <product sku=$s><price>$p</price></product>  [est=2 calls=1 rows=2 time=_ms idx=probe:0/guide:1/miss:0]
  -- 1 rows in _ms (virtual _ms)

With indexes off the same access walks the tree (no idx cell):

  $ $NIMBLE explain-analyze --index off "$Q" | sed -E -e 's/[0-9]+\.[0-9]+ms/_ms/g'
  SELECT ($p < 100)  (est 300 rows, actual 1 rows, _ms)
    SCAN a0 AS $*  (est 1000 rows, actual 2 rows, _ms)
  accesses:
    a0 -> PATH @products.catalog: /descendant-or-self::product[@sku][price] then match <product sku=$s><price>$p</price></product>  [est=1000 calls=1 rows=2 time=_ms]
  -- 1 rows in _ms (virtual _ms)

The repl inspects and steers the registry: \index lists registrations
(the demo XML store registers its document), \index build force-builds
a guide, \index off drops back to walking:

  $ printf '\\index\n\\index build src:products/catalog\n\\index\n\\index off\n\\index build src:products/catalog\n\\quit\n' | $NIMBLE repl
  nimble repl — 2 source(s) registered, \help for commands
  nimble> index: mode=auto epoch=0 bytes=0
    src:products/catalog                     unbuilt roots=1 bytes=0
  nimble> built index src:products/catalog: 3 paths, 5 nodes, 323 bytes
  nimble> index: mode=auto epoch=1 bytes=323
    src:products/catalog                     guide roots=1 bytes=323
  nimble> index: mode=off epoch=2 bytes=323
    src:products/catalog                     guide roots=1 bytes=323
  nimble> built index src:products/catalog: 3 paths, 5 nodes, 323 bytes
  nimble> 
