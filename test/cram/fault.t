Fault injection and the retry/breaker surface: deterministic fault
schedules (--flaky) against the demo federation, retries recovering
transient windows, breaker fail-fast under the concurrency server, and
the repl's \retry command.  Everything runs on the virtual clock, so
every line below is byte-for-byte deterministic.

  $ export NIMBLE=../../bin/nimble_cli.exe

A transient offline window covering the first 20 virtual ms: without
retries the query fails strictly; with --retry 3 the backoff walks past
the window and the answer is identical to a fault-free run:

  $ $NIMBLE query --flaky crm=off:0:20 'WHERE <row><name>$n</name><tier>$t</tier></row> IN "crm.customers", $t = 1 CONSTRUCT <c>$n</c>'
  nimble: source crm is unavailable
  [124]

  $ $NIMBLE query --flaky crm=off:0:20 --retry 3 'WHERE <row><name>$n</name><tier>$t</tier></row> IN "crm.customers", $t = 1 CONSTRUCT <c>$n</c>'
  c: Acme
  


A slow-call window only stretches virtual time, never the answer:

  $ $NIMBLE query --flaky crm=slow:0:1000:3 'WHERE <row><name>$n</name><tier>$t</tier></row> IN "crm.customers", $t = 1 CONSTRUCT <c>$n</c>'
  c: Acme
  


EXPLAIN ANALYZE attributes the retries to the access that spent them:

  $ $NIMBLE explain-analyze --flaky crm=off:0:20 --retry 3 'WHERE <row><name>$n</name><tier>$t</tier></row> IN "crm.customers", $t = 1 CONSTRUCT <c>$n</c>' | grep -E 'a[0-9] ->' | sed -E 's/time=[0-9.]+ms/time=_/'
    a0 -> SQL @crm: SELECT name, tier FROM customers WHERE tier = 1  [est=1000 calls=1 rows=1 time=_ retries=2]

A persistently dead source exhausts its budget; partial mode degrades
and names it instead of failing:

  $ $NIMBLE query --partial --flaky crm=down --retry 1 'WHERE <row><name>$n</name></row> IN "crm.customers" CONSTRUCT <c>$n</c>'
  
  -- incomplete: sources unavailable: crm


Malformed fault specs and breaker modes are rejected cleanly:

  $ $NIMBLE query --flaky crm=sometimes 'WHERE <row><name>$n</name></row> IN "crm.customers" CONSTRUCT <c>$n</c>'
  nimble: bad fault spec "sometimes" (down, off:FROM:UNTIL, slow:FROM:UNTIL:FACTOR, mid:FROM:UNTIL:PREFIX)
  [124]

  $ $NIMBLE query --breaker maybe 'WHERE <row><name>$n</name></row> IN "crm.customers" CONSTRUCT <c>$n</c>'
  nimble: unknown breaker mode "maybe" (on, off)
  [124]

Under the concurrency server, a breaker turns a dead source's repeated
failures into fail-fast rejections: with --retry 1 the first two
requests pay retries (three strikes open the breaker mid-way), the rest
never touch the source, and the report shows the open breaker:

  $ cat > breaker.serve <<'EOF'
  > demo
  > config engines=1 queue=8 inflight=8 overhead=1.0
  > open alice wonder
  > offline crm
  > request alice sales by_region region=west
  > request alice sales by_region region=west
  > request alice sales by_region region=west
  > request alice sales by_region region=west
  > drain
  > report
  > EOF
  $ $NIMBLE serve --retry 1 --breaker on breaker.serve
  demo users and lenses installed
  session alice open (analyst)
  source crm offline
  req 0 rejected: failed: source crm is unavailable
  req 1 rejected: failed: source crm is unavailable
  req 2 rejected: failed: source crm is unavailable
  req 3 rejected: failed: source crm is unavailable
  server: engines=1 overhead=1.0ms
  queue: depth=0/8 admitted=4 shed=0 (overload=0 saturated=0 expired=0)
  plan cache: size=1/32 hits=3 misses=1 evictions=0 invalidations=0 fallbacks=0
    param sales/by_region?region:str  sources=crm
  retry: retries=1 backoff=4..64ms jitter=0.25 deadline=none breaker=on threshold=3 cooldown=100ms stale=off
    breaker crm: open failures=3 opens=1
  engine 0: served=0 busy=0.00ms
  alice (analyst): submitted=4 completed=0 rejected=4 in-flight=0
  req 0 rejected: failed: source crm is unavailable
  req 1 rejected: failed: source crm is unavailable
  req 2 rejected: failed: source crm is unavailable
  req 3 rejected: failed: source crm is unavailable

The repl's \retry command inspects and reconfigures the policy:

  $ $NIMBLE repl <<'EOF'
  > \retry
  > \retry 2
  > \retry deadline 50
  > \retry breaker on
  > \retry stale on
  > \retry
  > \quit
  > EOF
  nimble repl — 2 source(s) registered, \help for commands
  nimble> retry: retries=0 backoff=4..64ms jitter=0.25 deadline=none breaker=off threshold=3 cooldown=100ms stale=off
  nimble> retry: retries=2 backoff=4..64ms jitter=0.25 deadline=none breaker=off threshold=3 cooldown=100ms stale=off
  nimble> retry: retries=2 backoff=4..64ms jitter=0.25 deadline=50ms breaker=off threshold=3 cooldown=100ms stale=off
  nimble> retry: retries=2 backoff=4..64ms jitter=0.25 deadline=50ms breaker=on threshold=3 cooldown=100ms stale=off
  nimble> retry: retries=2 backoff=4..64ms jitter=0.25 deadline=50ms breaker=on threshold=3 cooldown=100ms stale=on
  nimble> retry: retries=2 backoff=4..64ms jitter=0.25 deadline=50ms breaker=on threshold=3 cooldown=100ms stale=on
  nimble> 
