The batch-at-a-time execution engine: `--exec-mode batch` must answer
exactly like the default tuple engine, and EXPLAIN ANALYZE grows
per-operator batch columns.  Durations are normalized.

  $ export NIMBLE=../../bin/nimble_cli.exe
  $ Q='WHERE <row><name>$n</name><id>$i</id></row> IN "crm.customers", <row><cust_id>$i</cust_id><item>$it</item></row> IN "crm.orders", <product sku=$it><price>$p</price></product> IN "products" CONSTRUCT <sale><who>$n</who><price>$p</price></sale>'

Same federated join, both engines — byte-identical answers:

  $ $NIMBLE query "$Q" > tuple.out
  $ $NIMBLE query --exec-mode batch --chunk-size 8 "$Q" > batch.out
  $ cmp tuple.out batch.out && cat batch.out
  sale
    who: Acme
    price: 25
  sale
    who: Globex
    price: 4500
  sale
    who: Initech
    price: 25
  

The chunk size must be positive and the mode known:

  $ $NIMBLE query --exec-mode batch --chunk-size 0 "$Q"
  nimble: chunk size must be positive
  [124]
  $ $NIMBLE query --exec-mode vector "$Q"
  nimble: unknown exec mode "vector" (tuple, batch, parallel)
  [124]
  $ $NIMBLE query --parallel=-1 "$Q"
  nimble: parallelism must be non-negative
  [124]

The morsel-driven parallel engine answers byte-identically as well
(--parallel N overrides --exec-mode):

  $ $NIMBLE query --parallel 2 --chunk-size 8 "$Q" > par.out
  $ cmp tuple.out par.out && echo identical
  identical

Under parallel mode EXPLAIN ANALYZE reports per-operator morsel counts,
and the plan root adds the domain count and per-domain busy-time skew
(busiest vs. idlest domain); the footer names the engine:

  $ $NIMBLE explain-analyze --parallel 2 --chunk-size 8 "$Q" | sed -E -e 's/[0-9]+\.[0-9]+ms/_ms/g' -e 's|skew=[0-9.]+/_ms|skew=_|'
  PROJECT [i, it, n, p]  (est 50000 rows, actual 3 rows, _ms, morsels=1 domains=2 skew=_)
    HASH-JOIN $it = $it#r  (est 50000 rows, actual 3 rows, _ms, morsels=4)
      SCAN j0 AS $*  (est 1000 rows, actual 3 rows, _ms)
      RENAME [it->it#r]  (est 1000 rows, actual 2 rows, _ms, morsels=1)
        SCAN a2 AS $*  (est 1000 rows, actual 2 rows, _ms)
  accesses:
    j0 -> SQL-JOIN @crm: SELECT t0.id AS c0, t1.item AS c1, t0.name AS c2 FROM customers AS t0 JOIN orders AS t1 ON TRUE WHERE t0.id = t1.cust_id  [est=1000 calls=1 rows=3 time=_ms]
    a2 -> PATH @products.catalog: /descendant-or-self::product[@sku][price] then match <product sku=$it><price>$p</price></product>  [est=1000 calls=1 rows=2 time=_ms idx=probe:0/guide:1/miss:0]
  -- 3 rows in _ms (virtual _ms) [parallel domains=2 chunk=8]

Under batch mode EXPLAIN ANALYZE reports, per operator, how many
batches it produced, the average rows per batch, and the fill ratio
against the configured chunk size, and the footer names the engine:

  $ $NIMBLE explain-analyze --exec-mode batch --chunk-size 8 "$Q" | sed -E 's/[0-9]+\.[0-9]+ms/_ms/g'
  PROJECT [i, it, n, p]  (est 50000 rows, actual 3 rows, _ms, batches=1 rows/batch=3.0 fill=0.38)
    HASH-JOIN $it = $it#r  (est 50000 rows, actual 3 rows, _ms, batches=1 rows/batch=3.0 fill=0.38)
      SCAN j0 AS $*  (est 1000 rows, actual 3 rows, _ms, batches=1 rows/batch=3.0 fill=0.38)
      RENAME [it->it#r]  (est 1000 rows, actual 2 rows, _ms, batches=1 rows/batch=2.0 fill=0.25)
        SCAN a2 AS $*  (est 1000 rows, actual 2 rows, _ms, batches=1 rows/batch=2.0 fill=0.25)
  accesses:
    j0 -> SQL-JOIN @crm: SELECT t0.id AS c0, t1.item AS c1, t0.name AS c2 FROM customers AS t0 JOIN orders AS t1 ON TRUE WHERE t0.id = t1.cust_id  [est=1000 calls=1 rows=3 time=_ms]
    a2 -> PATH @products.catalog: /descendant-or-self::product[@sku][price] then match <product sku=$it><price>$p</price></product>  [est=1000 calls=1 rows=2 time=_ms idx=probe:0/guide:1/miss:0]
  -- 3 rows in _ms (virtual _ms) [batch chunk=8]

Tuple mode output is unchanged (no batch columns, no footer note):

  $ $NIMBLE explain-analyze "$Q" | sed -E 's/[0-9]+\.[0-9]+ms/_ms/g'
  PROJECT [i, it, n, p]  (est 50000 rows, actual 3 rows, _ms)
    HASH-JOIN $it = $it#r  (est 50000 rows, actual 3 rows, _ms)
      SCAN j0 AS $*  (est 1000 rows, actual 3 rows, _ms)
      RENAME [it->it#r]  (est 1000 rows, actual 2 rows, _ms)
        SCAN a2 AS $*  (est 1000 rows, actual 2 rows, _ms)
  accesses:
    j0 -> SQL-JOIN @crm: SELECT t0.id AS c0, t1.item AS c1, t0.name AS c2 FROM customers AS t0 JOIN orders AS t1 ON TRUE WHERE t0.id = t1.cust_id  [est=1000 calls=1 rows=3 time=_ms]
    a2 -> PATH @products.catalog: /descendant-or-self::product[@sku][price] then match <product sku=$it><price>$p</price></product>  [est=1000 calls=1 rows=2 time=_ms idx=probe:0/guide:1/miss:0]
  -- 3 rows in _ms (virtual _ms)

The repl can switch engines mid-session:

  $ printf '\\exec\n\\exec batch 16\n\\exec\nWHERE <row><name>$n</name><tier>$t</tier></row> IN "crm.customers", $t = 2 CONSTRUCT <c>$n</c>;\n\\exec tuple\n\\exec\n\\quit\n' | $NIMBLE repl
  nimble repl — 2 source(s) registered, \help for commands
  nimble> exec: tuple
  nimble> exec: batch(chunk=16)
  nimble> exec: batch(chunk=16)
  nimble> c: Globex
  c: Initech
  nimble> exec: tuple
  nimble> exec: tuple
  nimble> 

\par switches to the parallel engine mid-session (and \exec parallel
does the same with an explicit domain count):

  $ printf '\\par 2\nWHERE <row><name>$n</name><tier>$t</tier></row> IN "crm.customers", $t = 2 CONSTRUCT <c>$n</c>;\n\\exec parallel 4\n\\exec tuple\n\\exec\n\\quit\n' | $NIMBLE repl
  nimble repl — 2 source(s) registered, \help for commands
  nimble> exec: parallel(domains=2)
  nimble> c: Globex
  c: Initech
  nimble> exec: parallel(domains=4)
  nimble> exec: tuple
  nimble> exec: tuple
  nimble> 
