Observability: EXPLAIN ANALYZE, tracing, and the stats report, all
against the built-in demo federation.  Wall-clock durations are
normalized since they vary run to run.

  $ export NIMBLE=../../bin/nimble_cli.exe

EXPLAIN ANALYZE runs a federated join for real and prints estimated vs
actual rows per operator plus a per-source-fragment table.  Run 1 plans
blind (every scan estimated at the 1000-row default); the run records
what each access actually shipped, so run 2 replans with observed
cardinalities — and puts the smaller products scan on the build side:

  $ $NIMBLE explain-analyze --repeat 2 'WHERE <row><name>$n</name><id>$i</id></row> IN "crm.customers", <row><cust_id>$i</cust_id><item>$it</item></row> IN "crm.orders", <product sku=$it><price>$p</price></product> IN "products" CONSTRUCT <sale><who>$n</who><price>$p</price></sale>' | sed -E 's/[0-9]+\.[0-9]+ms/_ms/g'
  == run 1 ==
  PROJECT [i, it, n, p]  (est 50000 rows, actual 3 rows, _ms)
    HASH-JOIN $it = $it#r  (est 50000 rows, actual 3 rows, _ms)
      SCAN j0 AS $*  (est 1000 rows, actual 3 rows, _ms)
      RENAME [it->it#r]  (est 1000 rows, actual 2 rows, _ms)
        SCAN a2 AS $*  (est 1000 rows, actual 2 rows, _ms)
  accesses:
    j0 -> SQL-JOIN @crm: SELECT t0.id AS c0, t1.item AS c1, t0.name AS c2 FROM customers AS t0 JOIN orders AS t1 ON TRUE WHERE t0.id = t1.cust_id  [est=1000 calls=1 rows=3 time=_ms]
    a2 -> PATH @products.catalog: /descendant-or-self::product[@sku][price] then match <product sku=$it><price>$p</price></product>  [est=1000 calls=1 rows=2 time=_ms idx=probe:0/guide:1/miss:0]
  -- 3 rows in _ms (virtual _ms)
  == run 2 ==
  PROJECT [it, p, i, n]  (est 1 rows, actual 3 rows, _ms)
    HASH-JOIN $it = $it#r  (est 1 rows, actual 3 rows, _ms)
      SCAN a2 AS $*  (est 2 rows, actual 2 rows, _ms)
      RENAME [it->it#r]  (est 3 rows, actual 3 rows, _ms)
        SCAN j0 AS $*  (est 3 rows, actual 3 rows, _ms)
  accesses:
    j0 -> SQL-JOIN @crm: SELECT t0.id AS c0, t1.item AS c1, t0.name AS c2 FROM customers AS t0 JOIN orders AS t1 ON TRUE WHERE t0.id = t1.cust_id  [est=3 calls=1 rows=3 time=_ms]
    a2 -> PATH @products.catalog: /descendant-or-self::product[@sku][price] then match <product sku=$it><price>$p</price></product>  [est=2 calls=1 rows=2 time=_ms idx=probe:0/guide:1/miss:0]
  -- 3 rows in _ms (virtual _ms)

Tracing renders the span tree: the query root and one span per source
access, with the pushed fragment as an attribute:

  $ $NIMBLE trace 'WHERE <row><name>$n</name><tier>$t</tier></row> IN "crm.customers", $t = 2 CONSTRUCT <c>$n</c>' | sed -E 's/[0-9]+\.[0-9]+ms/_ms/g'
  trace:
  query  _ms {rows=2}
    mediator.access  _ms {id=a0 target=crm push=SELECT name, tier FROM customers WHERE tier = 2 rows=2}

The stats report: the metrics registry, the per-source breakdown, and
the observed-cardinality store.  Running the same query twice hits the
result cache on the second pass (hits=1, but only one source access):

  $ $NIMBLE stats 'WHERE <row><name>$n</name></row> IN "crm.customers" CONSTRUCT <c>$n</c>' 'WHERE <row><name>$n</name></row> IN "crm.customers" CONSTRUCT <c>$n</c>'
  metrics:
    cache.evictions                          0
    cache.expirations                        0
    cache.hits                               1
    cache.invalidations                      0
    cache.misses                             1
    fetch.batch_fallbacks                    0
    fetch.dedup_hits                         0
    fetch.rounds                             0
    fetch.tasks                              0
    fragcache.evictions                      0
    fragcache.expirations                    0
    fragcache.hits                           0
    fragcache.invalidations                  0
    fragcache.misses                         0
    idx.builds                               0
    idx.bytes                                0
    idx.guide_hits                           0
    idx.indexes                              1
    idx.invalidations                        1
    idx.misses                               0
    idx.value_hits                           0
    mediator.capability_fallbacks            0
    opt.analyze_runs                         0
    opt.bind_joins                           0
    opt.dp_fallbacks                         0
    opt.dp_plans                             0
    semcache.admissions                      0
    semcache.evictions                       0
    semcache.hits                            0
    semcache.invalidations                   0
    semcache.misses                          0
    semcache.order_fallbacks                 0
    semcache.partial_hits                    0
    semcache.rows_local                      0
    semcache.rows_shipped                    0
    semcache.view_hits                       0
    source.crm.accesses                      1
    source.crm.available                     1
    source.crm.rows                          3
    source.products.available                1
  per-source:
    crm              accesses=1 rows=3 available=yes
    products         available=yes
  observed cardinalities:
    sql|crm|SELECT name FROM customers       rows=3 samples=1
