Scatter-gather fetching from the CLI: the demo federation again, but
with overlapped source accesses and the fragment cache enabled.

  $ export NIMBLE=../../bin/nimble_cli.exe

Gather mode answers exactly what sequential mode answers:

  $ $NIMBLE query --fetch-mode gather --fetch-fanout 2 --frag-cache 16 'WHERE <row><name>$n</name></row> IN "crm.customers" CONSTRUCT <c>$n</c>'
  c: Acme
  c: Globex
  c: Initech
  


Explain-analyze tags each access with its fetch round, and a repeated
run shows the fragment cache answering instead of the source:

  $ $NIMBLE explain-analyze --fetch-mode gather --frag-cache 16 --repeat 2 'WHERE <row><name>$n</name></row> IN "crm.customers", <row><item>$s</item></row> IN "crm.orders" CONSTRUCT <r><n>$n</n><s>$s</s></r>' | grep -E 'a[0-9] ->' | sed -E 's/time=[0-9.]+ms/time=_/'
    a0 -> SQL @crm: SELECT name FROM customers  [est=1000 calls=1 rows=3 time=_ round=0]
    a1 -> SQL @crm: SELECT item FROM orders  [est=1000 calls=1 rows=3 time=_ round=0]
    a0 -> SQL @crm: SELECT name FROM customers  [est=3 calls=1 rows=3 time=_ round=0 cached=1]
    a1 -> SQL @crm: SELECT item FROM orders  [est=3 calls=1 rows=3 time=_ round=0 cached=1]

An unknown mode is rejected:

  $ $NIMBLE query --fetch-mode turbo 'WHERE <row><name>$n</name></row> IN "crm.customers" CONSTRUCT <c>$n</c>'
  nimble: unknown fetch mode "turbo" (seq, gather)
  [124]

The repl's \fetch command inspects and reconfigures scheduling:

  $ $NIMBLE repl <<'EOF'
  > \fetch
  > \fetch gather 2
  > \fetch cache 8
  > \fetch
  > \quit
  > EOF
  nimble repl — 2 source(s) registered, \help for commands
  nimble> fetch: mode=seq fanout=4
  fragment cache: 0/0 entries, hits=0 misses=0 evictions=0 expirations=0 invalidations=0
  nimble> fetch: mode=gather fanout=2
  fragment cache: 0/0 entries, hits=0 misses=0 evictions=0 expirations=0 invalidations=0
  nimble> fetch: mode=gather fanout=2
  fragment cache: 0/8 entries, hits=0 misses=0 evictions=0 expirations=0 invalidations=0
  nimble> fetch: mode=gather fanout=2
  fragment cache: 0/8 entries, hits=0 misses=0 evictions=0 expirations=0 invalidations=0
  nimble> 
