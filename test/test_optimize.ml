(* The cost-based optimizer: statistics catalog, cardinality estimation,
   DPsize join-order enumeration, bind joins, and plan-cache staleness.

   The central property: the DP optimizer (with bind-join conversion)
   returns byte-identical answers to the greedy walk across all three
   execution engines and both failure modes, including offline
   sources. *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let float_t = Alcotest.float 1e-9

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Statistics: histogram and estimation edge cases                     *)
(* ------------------------------------------------------------------ *)

let schema_x =
  Dschema.relational "t" [ Dschema.column "x" Value.TInt ~nullable:true ]

let row x = Tuple.make [ ("x", x) ]

let test_stats_empty_table () =
  let ts = Med_stats.of_rows ~schema:schema_x [] in
  check int_t "zero rows" 0 ts.Med_stats.ts_rows;
  check (Alcotest.option float_t) "eq on empty" (Some 0.0)
    (Med_stats.eq_fraction ts "x" (Value.Int 1));
  check (Alcotest.option float_t) "cmp on empty" (Some 0.0)
    (Med_stats.cmp_fraction ts "x" `Lt (Value.Int 1));
  check (Alcotest.option int_t) "no distinct" None (Med_stats.distinct_of ts "x");
  check (Alcotest.option float_t) "unknown column" None
    (Med_stats.eq_fraction ts "y" (Value.Int 1))

let test_stats_all_null_column () =
  let ts = Med_stats.of_rows ~schema:schema_x [ row Value.Null; row Value.Null ] in
  check int_t "rows counted" 2 ts.Med_stats.ts_rows;
  check (Alcotest.option float_t) "eq never matches" (Some 0.0)
    (Med_stats.eq_fraction ts "x" (Value.Int 1));
  check (Alcotest.option float_t) "range never matches" (Some 0.0)
    (Med_stats.cmp_fraction ts "x" `Gt (Value.Int 0));
  check (Alcotest.option int_t) "all-null has no distinct" None
    (Med_stats.distinct_of ts "x")

let test_stats_single_value_domain () =
  let ts = Med_stats.of_rows ~schema:schema_x (List.init 5 (fun _ -> row (Value.Int 7))) in
  check (Alcotest.option float_t) "eq on the value" (Some 1.0)
    (Med_stats.eq_fraction ts "x" (Value.Int 7));
  check (Alcotest.option float_t) "eq outside max" (Some 0.0)
    (Med_stats.eq_fraction ts "x" (Value.Int 8));
  check (Alcotest.option float_t) "eq below min" (Some 0.0)
    (Med_stats.eq_fraction ts "x" (Value.Int 6));
  check (Alcotest.option int_t) "one distinct" (Some 1)
    (Med_stats.distinct_of ts "x");
  check (Alcotest.option float_t) "everything below a high bound" (Some 1.0)
    (Med_stats.cmp_fraction ts "x" `Lt (Value.Int 100));
  check (Alcotest.option float_t) "nothing above it" (Some 0.0)
    (Med_stats.cmp_fraction ts "x" `Gt (Value.Int 100));
  (* NULL probes never match, matching SQL comparison semantics. *)
  check (Alcotest.option float_t) "null probe" (Some 0.0)
    (Med_stats.eq_fraction ts "x" Value.Null)

let test_stats_epoch_material_drift () =
  let st = Med_stats.create () in
  let e0 = Med_stats.epoch st in
  Med_stats.observe_rows st ~source:"s" ~export:"t" 100;
  let e1 = Med_stats.epoch st in
  check bool_t "first observation bumps" true (e1 > e0);
  Med_stats.observe_rows st ~source:"s" ~export:"t" 150;
  check int_t "small drift does not bump" e1 (Med_stats.epoch st);
  Med_stats.observe_rows st ~source:"s" ~export:"t" 300;
  check bool_t "2x drift bumps" true (Med_stats.epoch st > e1)

(* ------------------------------------------------------------------ *)
(* DPsize enumerator                                                   *)
(* ------------------------------------------------------------------ *)

let mk_rel id rows =
  { Med_optimize.r_id = id; r_rows = rows; r_latency_ms = 5.0; r_per_tuple_ms = 0.01 }

let test_dp_too_few_or_too_many () =
  let sel _ _ = 0.1 in
  check bool_t "one relation" true
    (Med_optimize.enumerate ~connected:(fun _ _ -> true) ~join_selectivity:sel
       [| mk_rel "a" 10.0 |]
    = None);
  let rels = Array.init 4 (fun i -> mk_rel (Printf.sprintf "a%d" i) 10.0) in
  check bool_t "past the cap falls back" true
    (Med_optimize.enumerate ~max_relations:3 ~connected:(fun _ _ -> true)
       ~join_selectivity:sel rels
    = None);
  check bool_t "at the cap enumerates" true
    (Med_optimize.enumerate ~max_relations:4 ~connected:(fun _ _ -> true)
       ~join_selectivity:sel rels
    <> None)

let test_dp_cartesian_only_when_disconnected () =
  let rels = [| mk_rel "a" 10.0; mk_rel "b" 20.0 |] in
  match
    Med_optimize.enumerate ~connected:(fun _ _ -> false)
      ~join_selectivity:(fun _ _ -> 1.0) rels
  with
  | None -> Alcotest.fail "disconnected pair should still plan (cartesian)"
  | Some p ->
    check float_t "cartesian output rows" 200.0 p.Med_optimize.p_rows;
    check int_t "covers both leaves" 2 (List.length (Med_optimize.leaves p.p_tree))

let test_dp_order_and_determinism () =
  (* Star: a big fact f connected to two small dims; the chosen tree
     must cover every leaf and repeat runs must agree exactly. *)
  let rels = [| mk_rel "f" 5000.0; mk_rel "d1" 10.0; mk_rel "d2" 20.0 |] in
  let connected i j = i = 0 || j = 0 in
  let sel i j = if i = 0 || j = 0 then 0.01 else 1.0 in
  match
    ( Med_optimize.enumerate ~connected ~join_selectivity:sel rels,
      Med_optimize.enumerate ~connected ~join_selectivity:sel rels )
  with
  | Some p1, Some p2 ->
    check (Alcotest.list int_t) "all leaves, each once" [ 0; 1; 2 ]
      (List.sort compare (Med_optimize.leaves p1.Med_optimize.p_tree));
    check Alcotest.string "deterministic"
      (Med_optimize.to_string rels p1.Med_optimize.p_tree)
      (Med_optimize.to_string rels p2.Med_optimize.p_tree);
    check float_t "same cost" p1.Med_optimize.p_cost p2.Med_optimize.p_cost;
    check bool_t "cost positive" true (p1.Med_optimize.p_cost > 0.0)
  | _ -> Alcotest.fail "expected plans"

let test_mode_of_string () =
  check bool_t "greedy" true (Med_optimize.mode_of_string "greedy" = Some Med_optimize.Greedy);
  check bool_t "dp" true (Med_optimize.mode_of_string "dp" = Some Med_optimize.dp);
  check bool_t "dp:4" true
    (Med_optimize.mode_of_string "dp:4" = Some (Med_optimize.Dp { max_relations = 4 }));
  check bool_t "dp:1 rejected" true (Med_optimize.mode_of_string "dp:1" = None);
  check bool_t "nonsense rejected" true (Med_optimize.mode_of_string "fast" = None)

(* ------------------------------------------------------------------ *)
(* Fixture: two identical federations, one per optimizer mode          *)
(* ------------------------------------------------------------------ *)

let build_catalog ~mode ~seed ~ncust ~norders ~offline =
  let cat = Med_catalog.create () in
  Med_catalog.set_optimizer cat mode;
  let g = Prng.create seed in
  let crm = Rel_db.create ~name:"crm" () in
  ignore
    (Rel_db.exec crm "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, tier INT)");
  for i = 1 to ncust do
    ignore
      (Rel_db.exec crm
         (Printf.sprintf "INSERT INTO customers VALUES (%d, 'cust %d', %d)" i i
            (1 + Prng.int g 3)))
  done;
  let sales = Rel_db.create ~name:"sales" () in
  ignore
    (Rel_db.exec sales
       "CREATE TABLE orders (oid INT PRIMARY KEY, cust_id INT, amount FLOAT)");
  for i = 1 to norders do
    (* Some orders carry NULL customer keys: they must never join, and a
       bind join must not ship them as IN-list keys. *)
    let cust =
      if Prng.int g 8 = 0 then "NULL" else string_of_int (1 + Prng.int g ncust)
    in
    ignore
      (Rel_db.exec sales
         (Printf.sprintf "INSERT INTO orders VALUES (%d, %s, %g)" i cust
            (float_of_int (10 + Prng.int g 5000) /. 10.0)))
  done;
  let profile =
    { Net_sim.latency_ms = 5.0; per_tuple_ms = 0.02;
      availability = (if offline then 0.0 else 1.0) }
  in
  let wrapped, stats = Net_sim.wrap ~seed:7 profile (Rel_source.make sales) in
  Med_catalog.register_source cat (Rel_source.make crm);
  Med_catalog.register_source cat wrapped;
  ignore (Med_catalog.analyze cat);
  (cat, stats)

let queries =
  [|
    (* Fact/dim join with a selective dimension filter — the bind-join
       shape.  ORDER BY a unique key makes answers byte-comparable. *)
    {|WHERE <row><oid>$o</oid><cust_id>$c</cust_id><amount>$a</amount></row> IN "sales.orders",
            <row><id>$c</id><name>$n</name><tier>$t</tier></row> IN "crm.customers",
            $t = 1
      CONSTRUCT <r><o>$o</o><n>$n</n><a>$a</a></r> ORDER BY $o|};
    (* Extra range residual on the fact side. *)
    {|WHERE <row><oid>$o</oid><cust_id>$c</cust_id><amount>$a</amount></row> IN "sales.orders",
            <row><id>$c</id><name>$n</name><tier>$t</tier></row> IN "crm.customers",
            $t = 2, $a > 100
      CONSTRUCT <r><o>$o</o><n>$n</n></r> ORDER BY $o|};
    (* Single access: DP degenerates to the greedy path. *)
    {|WHERE <row><id>$c</id><name>$n</name><tier>$t</tier></row> IN "crm.customers",
            $t = 2
      CONSTRUCT <c><i>$c</i><n>$n</n></c> ORDER BY $c|};
  |]

let render trees = String.concat "\n" (List.map Dtree.to_string trees)

(* ------------------------------------------------------------------ *)
(* QCheck: optimized == greedy, engines x failure modes x offline      *)
(* ------------------------------------------------------------------ *)

let gen_case =
  let open QCheck2.Gen in
  let* seed = int_bound 10_000 in
  let* ncust = int_range 4 25 in
  let* norders = int_range 10 120 in
  let* offline = bool in
  let* engine = int_bound 2 in
  let* strict = bool in
  let* qidx = int_bound (Array.length queries - 1) in
  pure (seed, ncust, norders, offline, engine, strict, qidx)

let engine_of = function
  | 0 -> Alg_batch.Tuple
  | 1 -> Alg_batch.Batch { chunk = 4 }
  | _ -> Alg_batch.Parallel { domains = 2; chunk = 3 }

let prop_dp_equals_greedy =
  QCheck2.Test.make ~name:"dp plan = greedy plan (answers byte-identical)"
    ~print:(fun (seed, ncust, norders, offline, engine, strict, qidx) ->
      Printf.sprintf "seed=%d ncust=%d norders=%d offline=%b engine=%d strict=%b qidx=%d"
        seed ncust norders offline engine strict qidx)
    ~count:40 gen_case
    (fun (seed, ncust, norders, offline, engine, strict, qidx) ->
      let cat_g, _ =
        build_catalog ~mode:Med_optimize.Greedy ~seed ~ncust ~norders ~offline
      in
      let cat_d, _ =
        build_catalog ~mode:Med_optimize.dp ~seed ~ncust ~norders ~offline
      in
      Med_catalog.set_exec_mode cat_g (engine_of engine);
      Med_catalog.set_exec_mode cat_d (engine_of engine);
      let q = Xq_parser.parse_exn queries.(qidx) in
      if strict then begin
        let outcome cat =
          match Med_exec.run cat q with
          | trees -> Ok (render trees)
          | exception Alg_exec.Source_unavailable s -> Error s
          | exception Source.Unavailable s -> Error s
        in
        outcome cat_g = outcome cat_d
      end
      else begin
        let outcome cat =
          let trees, skipped = Med_exec.run_partial cat q in
          (render trees, List.sort compare skipped)
        in
        outcome cat_g = outcome cat_d
      end)

(* ------------------------------------------------------------------ *)
(* Bind joins and EXPLAIN surfaces                                     *)
(* ------------------------------------------------------------------ *)

let test_dp_converts_to_bind_join () =
  let cat, stats =
    build_catalog ~mode:Med_optimize.dp ~seed:3 ~ncust:12 ~norders:200
      ~offline:false
  in
  let q = Xq_parser.parse_exn queries.(0) in
  let compiled = Med_planner.compile cat q in
  (match compiled.Med_planner.opt_info with
  | None -> Alcotest.fail "DP compile should carry optimizer info"
  | Some oi ->
    check bool_t "dp mode" true (oi.Med_planner.oi_mode = "dp");
    check bool_t "one bind join" true (oi.Med_planner.oi_binds <> []));
  let explained = Med_planner.explain compiled in
  check bool_t "explain shows the bind" true (contains explained "SQL-BIND");
  check bool_t "explain shows the order" true (contains explained "optimizer: dp");
  (* The bound fetch ships strictly fewer fact rows than the unbound
     scan on the greedy side. *)
  let cat_g, stats_g =
    build_catalog ~mode:Med_optimize.Greedy ~seed:3 ~ncust:12 ~norders:200
      ~offline:false
  in
  let s0 = stats.Net_sim.tuples_shipped and g0 = stats_g.Net_sim.tuples_shipped in
  let out_d = render (Med_exec.run cat q) in
  let out_g = render (Med_exec.run cat_g q) in
  check Alcotest.string "answers byte-identical" out_g out_d;
  let shipped_d = stats.Net_sim.tuples_shipped - s0
  and shipped_g = stats_g.Net_sim.tuples_shipped - g0 in
  check bool_t "bind join ships fewer fact rows" true (shipped_d < shipped_g)

let test_explain_analyze_reports_estimates () =
  let cat, _ =
    build_catalog ~mode:Med_optimize.dp ~seed:5 ~ncust:10 ~norders:80
      ~offline:false
  in
  let q = Xq_parser.parse_exn queries.(0) in
  let a = Med_exec.run_analyzed cat q in
  let report = Med_exec.analysis_to_string a in
  check bool_t "optimizer cell present" true (contains report "optimizer: dp");
  check bool_t "per-operator estimates" true (contains report "est ");
  check bool_t "per-operator actuals" true (contains report "actual ");
  check bool_t "per-fragment estimates" true (contains report "est=")

(* ------------------------------------------------------------------ *)
(* Plan cache: statistics-epoch staleness                              *)
(* ------------------------------------------------------------------ *)

let test_plan_cache_stale_epoch_invalidates () =
  Obs_clock.reset_virtual ();
  let sys = Srv_workload.demo_system () in
  let cat = Nimble.catalog sys in
  let pc = Srv_plancache.create cat in
  let lens =
    match Nimble.find_lens sys "sales" with
    | Some l -> l
    | None -> Alcotest.fail "demo system has no sales lens"
  in
  let look region =
    snd (Srv_plancache.lookup pc ~lens ~query:"by_region" ~args:[ ("region", region) ])
  in
  check bool_t "cold miss" false (look "west");
  check bool_t "warm hit" true (look "east");
  (* \analyze refreshes statistics and bumps the epoch: the cached plan
     was optimized against stale estimates and must not be reused. *)
  ignore (Med_catalog.analyze cat);
  check bool_t "stale plan recompiles" false (look "north");
  let s = Srv_plancache.stats pc in
  check int_t "stale entry invalidated" 1 s.Srv_plancache.invalidations;
  check int_t "two misses total" 2 s.Srv_plancache.misses;
  (* The re-stored entry carries the new epoch and hits again. *)
  check bool_t "fresh entry hits" true (look "south")

let () =
  let props = List.map QCheck_alcotest.to_alcotest [ prop_dp_equals_greedy ] in
  Alcotest.run "optimize"
    [
      ( "stats",
        [
          Alcotest.test_case "empty table" `Quick test_stats_empty_table;
          Alcotest.test_case "all-null column" `Quick test_stats_all_null_column;
          Alcotest.test_case "single-value domain" `Quick test_stats_single_value_domain;
          Alcotest.test_case "epoch: material drift only" `Quick
            test_stats_epoch_material_drift;
        ] );
      ( "dpsize",
        [
          Alcotest.test_case "cap and arity fallback" `Quick test_dp_too_few_or_too_many;
          Alcotest.test_case "cartesian only when disconnected" `Quick
            test_dp_cartesian_only_when_disconnected;
          Alcotest.test_case "order choice is deterministic" `Quick
            test_dp_order_and_determinism;
          Alcotest.test_case "mode strings" `Quick test_mode_of_string;
        ] );
      ( "bind-join",
        [
          Alcotest.test_case "dp converts and ships fewer rows" `Quick
            test_dp_converts_to_bind_join;
          Alcotest.test_case "explain analyze reports estimates" `Quick
            test_explain_analyze_reports_estimates;
        ] );
      ( "plan-cache",
        [
          Alcotest.test_case "stale statistics epoch invalidates" `Quick
            test_plan_cache_stale_epoch_invalidates;
        ]
        @ props );
    ]
