(* Tests for the dynamic data cleaning subsystem: normalization,
   similarity measures, the concordance database, merge/purge, lineage
   and declarative flows. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let string_t = Alcotest.string
let float_t = Alcotest.float 1e-6

(* ------------------------------------------------------------------ *)
(* Normalization                                                       *)
(* ------------------------------------------------------------------ *)

let test_normalize_basic () =
  check string_t "whitespace" "a b c" (Cl_normalize.collapse_whitespace "  a \t b \n c ");
  check string_t "punctuation" "a b  c" (Cl_normalize.strip_punctuation "a-b, c");
  check string_t "basic" "acme corp" (Cl_normalize.basic "  ACME,  Corp.  ")

let test_normalize_name () =
  check string_t "honorific" "jane doe" (Cl_normalize.normalize_name "Dr. Jane Doe");
  check string_t "corp suffix" "acme" (Cl_normalize.normalize_name "ACME Inc.");
  check string_t "last-first" "jane doe" (Cl_normalize.normalize_name "Doe, Jane");
  check string_t "idempotent" "jane doe"
    (Cl_normalize.normalize_name (Cl_normalize.normalize_name "Doe, Jane"))

let test_normalize_address () =
  check string_t "abbrevs" "123 north main street apartment 4"
    (Cl_normalize.normalize_address "123 N. Main St. Apt 4");
  check string_t "avenue" "9 fifth avenue" (Cl_normalize.normalize_address "9 Fifth Ave")

let test_normalize_phone () =
  check string_t "formatted" "2065551234" (Cl_normalize.normalize_phone "(206) 555-1234");
  check string_t "country code" "2065551234" (Cl_normalize.normalize_phone "+1 206 555 1234")

let test_normalize_registry () =
  Cl_normalize.register "shout" String.uppercase_ascii;
  check string_t "custom applies" "HI" (Cl_normalize.apply "shout" "hi");
  check bool_t "builtin present" true (Cl_normalize.find "address" <> None);
  check bool_t "unknown absent" true (Cl_normalize.find "nope" = None)

(* ------------------------------------------------------------------ *)
(* Similarity                                                          *)
(* ------------------------------------------------------------------ *)

let test_levenshtein () =
  check int_t "kitten/sitting" 3 (Cl_similarity.levenshtein "kitten" "sitting");
  check int_t "identical" 0 (Cl_similarity.levenshtein "abc" "abc");
  check int_t "empty" 3 (Cl_similarity.levenshtein "" "abc");
  check float_t "similarity" 1.0 (Cl_similarity.levenshtein_similarity "x" "x")

let test_jaro_winkler () =
  check float_t "identical" 1.0 (Cl_similarity.jaro_winkler "martha" "martha");
  check bool_t "close names" true (Cl_similarity.jaro_winkler "martha" "marhta" > 0.94);
  check bool_t "prefix helps" true
    (Cl_similarity.jaro_winkler "dwayne" "duane" > Cl_similarity.jaro "dwayne" "duane");
  check float_t "disjoint" 0.0 (Cl_similarity.jaro "abc" "xyz")

let test_jaccard_ngram () =
  check float_t "same tokens any order" 1.0 (Cl_similarity.jaccard "acme corp" "CORP Acme");
  check bool_t "partial overlap" true
    (let s = Cl_similarity.jaccard "acme corp" "acme inc" in
     s > 0.3 && s < 0.4);
  check bool_t "ngram catches typos" true
    (Cl_similarity.ngram_similarity "globex" "globbex" > 0.7)

let test_tfidf_cosine () =
  let corpus =
    Cl_similarity.corpus_of
      [ "acme corporation"; "globex corporation"; "initech corporation"; "umbrella corporation" ]
  in
  (* "corporation" is common, so the distinctive token dominates. *)
  let same = Cl_similarity.tfidf_cosine corpus "acme corporation" "acme" in
  let diff = Cl_similarity.tfidf_cosine corpus "acme corporation" "globex corporation" in
  check bool_t "rare token dominates" true (same > diff);
  check bool_t "shared common token scores low" true (diff < 0.5)

(* ------------------------------------------------------------------ *)
(* Concordance                                                         *)
(* ------------------------------------------------------------------ *)

let test_concordance_basics () =
  let c = Cl_concordance.create () in
  ignore (Cl_concordance.record c (Cl_concordance.Automatic "jw") Cl_concordance.Same "a:1" "b:2");
  (match Cl_concordance.lookup c "b:2" "a:1" with
  | Some d -> check bool_t "order-insensitive" true (d.Cl_concordance.verdict = Cl_concordance.Same)
  | None -> Alcotest.fail "expected determination");
  check int_t "size" 1 (Cl_concordance.size c)

let test_concordance_pending_resolve () =
  let c = Cl_concordance.create () in
  ignore (Cl_concordance.record c (Cl_concordance.Automatic "jw") Cl_concordance.Unsure "a" "b");
  ignore (Cl_concordance.record c (Cl_concordance.Automatic "jw") Cl_concordance.Unsure "a" "c");
  check int_t "two pending" 2 (List.length (Cl_concordance.pending c));
  ignore (Cl_concordance.resolve c Cl_concordance.Same "a" "b");
  check int_t "one pending after human" 1 (List.length (Cl_concordance.pending c));
  (match Cl_concordance.lookup c "a" "b" with
  | Some d ->
    check bool_t "human decision wins" true (d.Cl_concordance.origin = Cl_concordance.Human)
  | None -> Alcotest.fail "expected determination");
  check int_t "history kept" 2 (List.length (Cl_concordance.history c "a" "b"))

let test_concordance_rollback () =
  let c = Cl_concordance.create () in
  let d1 = Cl_concordance.record c (Cl_concordance.Automatic "m") Cl_concordance.Different "x" "y" in
  ignore (Cl_concordance.resolve c Cl_concordance.Same "x" "y");
  check int_t "rolled back one" 1 (Cl_concordance.rollback c d1.Cl_concordance.seq);
  match Cl_concordance.lookup c "x" "y" with
  | Some d -> check bool_t "earlier verdict restored" true (d.Cl_concordance.verdict = Cl_concordance.Different)
  | None -> Alcotest.fail "expected restored determination"

let test_concordance_csv_roundtrip () =
  let c = Cl_concordance.create () in
  ignore (Cl_concordance.record c ~note:"looks same" Cl_concordance.Human Cl_concordance.Same "a" "b");
  ignore (Cl_concordance.record c (Cl_concordance.Automatic "jw") Cl_concordance.Unsure "c" "d");
  let c2 = Cl_concordance.of_csv (Cl_concordance.to_csv c) in
  check int_t "size preserved" (Cl_concordance.size c) (Cl_concordance.size c2);
  match Cl_concordance.lookup c2 "a" "b" with
  | Some d ->
    check bool_t "verdict preserved" true (d.Cl_concordance.verdict = Cl_concordance.Same);
    check string_t "note preserved" "looks same" d.Cl_concordance.note
  | None -> Alcotest.fail "expected persisted determination"

(* ------------------------------------------------------------------ *)
(* Union-find and merge/purge                                          *)
(* ------------------------------------------------------------------ *)

let test_unionfind () =
  let uf = Cl_unionfind.create () in
  Cl_unionfind.union uf "a" "b";
  Cl_unionfind.union uf "b" "c";
  Cl_unionfind.union uf "x" "y";
  check bool_t "transitive" true (Cl_unionfind.same uf "a" "c");
  check bool_t "separate" false (Cl_unionfind.same uf "a" "x");
  check int_t "two groups" 2 (List.length (Cl_unionfind.groups uf));
  check (Alcotest.list string_t) "sorted members" [ "a"; "b"; "c" ]
    (List.hd (Cl_unionfind.groups uf))

let mk_records names =
  List.mapi
    (fun i n ->
      { Cl_merge_purge.key = Printf.sprintf "r%02d" i;
        data = Tuple.make [ ("name", Value.String n) ] })
    names

let dup_names =
  [
    "Acme Corporation"; "ACME Corp"; "Globex"; "Globex Inc"; "Initech";
    "Umbrella"; "Umbrela"; "Stark Industries"; "Wayne Enterprises"; "Initech LLC";
  ]

let name_matcher () =
  let measure a b =
    Cl_similarity.jaro_winkler (Cl_normalize.normalize_name a) (Cl_normalize.normalize_name b)
  in
  Cl_merge_purge.similarity_matcher ~measure ~same_above:0.92 ~different_below:0.7 ()

let test_naive_pairs_finds_dups () =
  let outcome = Cl_merge_purge.naive_pairs (name_matcher ()) (mk_records dup_names) in
  check int_t "all pairs compared" 45 outcome.Cl_merge_purge.comparisons;
  check bool_t "found acme pair" true
    (List.exists
       (fun g -> List.mem "r00" g && List.mem "r01" g)
       outcome.Cl_merge_purge.clusters)

let test_sorted_neighborhood_fewer_comparisons () =
  let records = mk_records dup_names in
  let key tup = Cl_normalize.normalize_name (Value.to_string (Tuple.get_exn tup "name")) in
  let naive = Cl_merge_purge.naive_pairs (name_matcher ()) records in
  let snm =
    Cl_merge_purge.sorted_neighborhood ~window:3 ~keys:[ key ] (name_matcher ()) records
  in
  check bool_t "fewer comparisons" true
    (snm.Cl_merge_purge.comparisons < naive.Cl_merge_purge.comparisons);
  (* Sorting by normalized name puts duplicates adjacent, so the window
     finds the same clusters here. *)
  check int_t "same cluster count" (List.length naive.Cl_merge_purge.clusters)
    (List.length snm.Cl_merge_purge.clusters)

let test_concordance_replay_short_circuits () =
  let conc = Cl_concordance.create () in
  let calls = ref 0 in
  let counting_matcher a b =
    incr calls;
    (name_matcher ()) a b
  in
  let records = mk_records dup_names in
  let key_of tup = Value.to_string (Tuple.get_exn tup "name") in
  let matcher = Cl_merge_purge.with_concordance_keys conc ~key_of counting_matcher in
  let key tup = Cl_normalize.normalize_name (Value.to_string (Tuple.get_exn tup "name")) in
  let run () = Cl_merge_purge.sorted_neighborhood ~window:3 ~keys:[ key ] matcher records in
  let o1 = run () in
  let cold = !calls in
  let o2 = run () in
  let warm = !calls - cold in
  check int_t "no matcher calls on replay" 0 warm;
  check int_t "same clusters" (List.length o1.Cl_merge_purge.clusters)
    (List.length o2.Cl_merge_purge.clusters);
  check bool_t "concordance populated" true (Cl_concordance.size conc > 0)

(* Property: sorted-neighborhood clusters never split an exact-duplicate
   pair that sorts adjacently. *)
let prop_snm_exact_dups =
  QCheck2.Test.make ~name:"snm groups exact duplicates" ~count:50
    QCheck2.Gen.(list_size (int_range 2 30) (oneofl [ "aa"; "bb"; "cc"; "dd" ]))
    (fun names ->
      let records = mk_records names in
      let matcher =
        Cl_merge_purge.similarity_matcher
          ~measure:(fun a b -> if a = b then 1.0 else 0.0)
          ~same_above:0.5 ~different_below:0.5 ()
      in
      let key tup = Value.to_string (Tuple.get_exn tup "name") in
      let outcome = Cl_merge_purge.sorted_neighborhood ~window:2 ~keys:[ key ] matcher records in
      (* every name occurring k>=2 times forms one cluster of size k *)
      let counts = Hashtbl.create 8 in
      List.iter
        (fun n -> Hashtbl.replace counts n (1 + Option.value ~default:0 (Hashtbl.find_opt counts n)))
        names;
      Hashtbl.fold
        (fun n k acc ->
          acc
          && (k < 2
             || List.exists
                  (fun cluster -> List.length cluster = k
                    && List.for_all
                         (fun key ->
                           let idx = int_of_string (String.sub key 1 2) in
                           List.nth names idx = n)
                         cluster)
                  outcome.Cl_merge_purge.clusters))
        counts true)

(* ------------------------------------------------------------------ *)
(* Lineage                                                             *)
(* ------------------------------------------------------------------ *)

let test_lineage_ancestry () =
  let lin = Cl_lineage.create () in
  ignore (Cl_lineage.derive lin ~operation:"merge" ~inputs:[ "a"; "b" ] "m1");
  ignore (Cl_lineage.derive lin ~operation:"merge" ~inputs:[ "m1"; "c" ] "m2");
  check (Alcotest.list string_t) "raw ancestors" [ "a"; "b"; "c" ] (Cl_lineage.ancestry lin "m2");
  check (Alcotest.list string_t) "descendants of a" [ "m1"; "m2" ] (Cl_lineage.descendants lin "a")

let test_lineage_rollback () =
  let lin = Cl_lineage.create () in
  ignore (Cl_lineage.derive lin ~operation:"merge" ~inputs:[ "a"; "b" ] "m1");
  ignore (Cl_lineage.derive lin ~operation:"merge" ~inputs:[ "m1"; "c" ] "m2");
  let removed = Cl_lineage.rollback lin "m1" in
  check (Alcotest.list string_t) "both derivations removed" [ "m1"; "m2" ] removed;
  check int_t "empty" 0 (Cl_lineage.size lin)

(* ------------------------------------------------------------------ *)
(* Flows                                                               *)
(* ------------------------------------------------------------------ *)

let customer_tuples =
  [
    [ ("id", Value.String "s1:1"); ("name", Value.String "ACME, Corp."); ("city", Value.String "Seattle") ];
    [ ("id", Value.String "s1:2"); ("name", Value.String "Globex Inc"); ("city", Value.Null) ];
    [ ("id", Value.String "s2:1"); ("name", Value.String "Acme Corporation"); ("city", Value.Null) ];
    [ ("id", Value.String "s2:2"); ("name", Value.String "Globex"); ("city", Value.String "NYC") ];
    [ ("id", Value.String "s2:3"); ("name", Value.String "Initech"); ("city", Value.String "Austin") ];
  ]
  |> List.map Tuple.make

let dedupe_flow =
  {
    Cl_flow.flow_name = "customer-dedupe";
    steps =
      [
        Cl_flow.Derive { field = "norm_name"; from_field = "name"; normalizer = "name" };
        Cl_flow.Dedupe
          {
            match_field = "norm_name";
            blocking_fields = [ "norm_name" ];
            measure = "jaro_winkler";
            same_above = 0.9;
            different_below = 0.6;
            window = 4;
          };
      ];
  }

let test_flow_dedupe_merges () =
  let records = Cl_flow.records_of_tuples ~key_field:"id" customer_tuples in
  let report = Cl_flow.run dedupe_flow records in
  check int_t "input count" 5 report.Cl_flow.input_count;
  check int_t "two clusters merged" 2 report.Cl_flow.merged_clusters;
  check int_t "three entities remain" 3 (List.length report.Cl_flow.output);
  (* merged record unions fields: Globex keeps the NYC city *)
  let globex =
    List.find
      (fun r ->
        Cl_normalize.normalize_name
          (Value.to_string (Tuple.get_exn r.Cl_merge_purge.data "name"))
        = "globex")
      report.Cl_flow.output
  in
  check string_t "city survives merge" "NYC"
    (Value.to_string (Tuple.get_exn globex.Cl_merge_purge.data "city"))

let test_flow_lineage_records_merges () =
  let lineage = Cl_lineage.create () in
  let records = Cl_flow.records_of_tuples ~key_field:"id" customer_tuples in
  let report = Cl_flow.run ~lineage dedupe_flow records in
  check int_t "two merge entries" 2 (Cl_lineage.size lineage);
  ignore report;
  let merged_key = "s1:1" in
  check bool_t "merge lineage present" true (Cl_lineage.entry_of lineage merged_key <> None);
  check (Alcotest.list string_t) "ancestry is both sources" [ "s2:1" ]
    (Cl_lineage.ancestry lineage merged_key)

let test_flow_filter_normalize () =
  let flow =
    {
      Cl_flow.flow_name = "f";
      steps =
        [
          Cl_flow.Normalize { field = "name"; normalizer = "basic" };
          Cl_flow.Filter
            { label = "has-city"; keep = (fun tup -> Tuple.get tup "city" <> Some Value.Null) };
        ];
    }
  in
  let records = Cl_flow.records_of_tuples ~key_field:"id" customer_tuples in
  let report = Cl_flow.run flow records in
  check int_t "three with city" 3 (List.length report.Cl_flow.output);
  let first = List.hd report.Cl_flow.output in
  check string_t "normalized in place" "acme corp"
    (Value.to_string (Tuple.get_exn first.Cl_merge_purge.data "name"))

let test_flow_exceptions_trapped () =
  let flow =
    {
      Cl_flow.flow_name = "strict";
      steps =
        [
          Cl_flow.Dedupe
            {
              match_field = "name";
              blocking_fields = [];
              measure = "jaro_winkler";
              same_above = 0.97;       (* very strict: near-dups become unsure *)
              different_below = 0.8;
              window = 5;
            };
        ];
    }
  in
  let records = Cl_flow.records_of_tuples ~key_field:"id" customer_tuples in
  let report = Cl_flow.run flow records in
  check bool_t "unsure pairs trapped, run continues" true
    (List.length report.Cl_flow.exceptions >= 1)

let test_flow_unknown_normalizer () =
  let flow =
    { Cl_flow.flow_name = "bad";
      steps = [ Cl_flow.Normalize { field = "name"; normalizer = "nope" } ] }
  in
  try
    ignore (Cl_flow.run flow []);
    Alcotest.fail "expected Flow_error"
  with Cl_flow.Flow_error _ -> ()

let () =
  let props = List.map QCheck_alcotest.to_alcotest [ prop_snm_exact_dups ] in
  Alcotest.run "cleaning"
    [
      ( "normalize",
        [
          Alcotest.test_case "basic" `Quick test_normalize_basic;
          Alcotest.test_case "names" `Quick test_normalize_name;
          Alcotest.test_case "addresses" `Quick test_normalize_address;
          Alcotest.test_case "phones" `Quick test_normalize_phone;
          Alcotest.test_case "registry" `Quick test_normalize_registry;
        ] );
      ( "similarity",
        [
          Alcotest.test_case "levenshtein" `Quick test_levenshtein;
          Alcotest.test_case "jaro-winkler" `Quick test_jaro_winkler;
          Alcotest.test_case "jaccard / ngram" `Quick test_jaccard_ngram;
          Alcotest.test_case "tfidf cosine" `Quick test_tfidf_cosine;
        ] );
      ( "concordance",
        [
          Alcotest.test_case "record/lookup" `Quick test_concordance_basics;
          Alcotest.test_case "pending and resolve" `Quick test_concordance_pending_resolve;
          Alcotest.test_case "rollback" `Quick test_concordance_rollback;
          Alcotest.test_case "csv roundtrip" `Quick test_concordance_csv_roundtrip;
        ] );
      ( "merge-purge",
        [
          Alcotest.test_case "union-find" `Quick test_unionfind;
          Alcotest.test_case "naive pairs" `Quick test_naive_pairs_finds_dups;
          Alcotest.test_case "sorted neighborhood" `Quick test_sorted_neighborhood_fewer_comparisons;
          Alcotest.test_case "concordance replay" `Quick test_concordance_replay_short_circuits;
        ]
        @ props );
      ( "lineage",
        [
          Alcotest.test_case "ancestry" `Quick test_lineage_ancestry;
          Alcotest.test_case "rollback" `Quick test_lineage_rollback;
        ] );
      ( "flows",
        [
          Alcotest.test_case "dedupe merges" `Quick test_flow_dedupe_merges;
          Alcotest.test_case "lineage recorded" `Quick test_flow_lineage_records_merges;
          Alcotest.test_case "filter + normalize" `Quick test_flow_filter_normalize;
          Alcotest.test_case "exceptions trapped" `Quick test_flow_exceptions_trapped;
          Alcotest.test_case "unknown normalizer" `Quick test_flow_unknown_normalizer;
        ] );
    ]
