(* Tests for XML-QL: lexer, parser, pretty-printer and the reference
   evaluator's semantics. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let string_t = Alcotest.string

let value_t = Alcotest.testable (fun ppf v -> Value.pp ppf v) Value.equal

let bib_doc =
  Dtree.of_xml_element
    (Xml_parser.parse_element_exn
       {|<bib>
           <book year="1994"><title>TCP Illustrated</title>
             <author><last>Stevens</last></author>
             <price>55</price></book>
           <book year="2000"><title>Data on the Web</title>
             <author><last>Abiteboul</last></author>
             <author><last>Buneman</last></author>
             <price>39</price></book>
           <book year="1998"><title>Old Web</title>
             <author><last>Abiteboul</last></author>
             <price>25</price></book>
         </bib>|})

let reviews_doc =
  Dtree.of_xml_element
    (Xml_parser.parse_element_exn
       {|<reviews>
           <review><title>TCP Illustrated</title><rating>5</rating></review>
           <review><title>Data on the Web</title><rating>4</rating></review>
         </reviews>|})

let resolver = function
  | "bib" -> [ bib_doc ]
  | "reviews" -> [ reviews_doc ]
  | _ -> raise Not_found

let parse = Xq_parser.parse_exn

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let test_parse_simple () =
  let q =
    parse
      {|WHERE <book year=$y><title>$t</title></book> IN "bib", $y > 1995
        CONSTRUCT <res><t>$t</t></res>|}
  in
  check int_t "one clause" 1 (List.length q.Xq_ast.clauses);
  check int_t "one condition" 1 (List.length q.Xq_ast.conditions);
  check (Alcotest.list string_t) "vars" [ "y"; "t" ] (Xq_ast.query_vars q)

let test_parse_multi_clause () =
  let q =
    parse
      {|WHERE <book><title>$t</title></book> IN "bib",
             <review><title>$t</title><rating>$r</rating></review> IN "reviews"
        CONSTRUCT <out><t>$t</t><r>$r</r></out>|}
  in
  check int_t "two clauses" 2 (List.length q.Xq_ast.clauses);
  check (Alcotest.list string_t) "sources" [ "bib"; "reviews" ] (Xq_ast.sources_of q)

let test_parse_element_as () =
  let q = parse {|WHERE <book/> ELEMENT_AS $b IN "bib" CONSTRUCT <o>$b</o>|} in
  match (List.hd q.Xq_ast.clauses).Xq_ast.clause_pattern.Xq_ast.element_as with
  | Some v -> check string_t "bound" "b" v
  | None -> Alcotest.fail "expected ELEMENT_AS"

let test_parse_order_limit () =
  let q =
    parse
      {|WHERE <book><price>$p</price></book> IN "bib"
        CONSTRUCT <x>$p</x> ORDER BY $p DESC LIMIT 2|}
  in
  check int_t "order specs" 1 (List.length q.Xq_ast.order_by);
  check (Alcotest.option int_t) "limit" (Some 2) q.Xq_ast.limit

let test_parse_nested_subquery () =
  let q =
    parse
      {|WHERE <book><author>$a</author></book> IN "bib"
        CONSTRUCT <entry>$a
          { WHERE <book><author>$a</author><title>$t</title></book> IN "bib"
            CONSTRUCT <wrote>$t</wrote> }
        </entry>|}
  in
  (match q.Xq_ast.construct with
  | Xq_ast.Tpl_element (_, _, kids) ->
    check bool_t "has subquery" true
      (List.exists (function Xq_ast.Tpl_subquery _ -> true | _ -> false) kids)
  | _ -> Alcotest.fail "expected element template");
  check (Alcotest.list string_t) "all sources dedup" [ "bib" ] (Xq_ast.all_sources_of q)

let test_parse_errors () =
  List.iter
    (fun s ->
      match Xq_parser.parse s with
      | Ok _ -> Alcotest.failf "expected parse error for %S" s
      | Error _ -> ())
    [
      "";
      "WHERE CONSTRUCT <a/>";
      "WHERE <a/> IN \"s\"";
      "WHERE <a></b> IN \"s\" CONSTRUCT <x/>";
      "WHERE <a/> IN \"s\" CONSTRUCT <x>";
      "WHERE $x > 1 CONSTRUCT <x/>";
      "WHERE <a/> IN \"s\" CONSTRUCT <x/> LIMIT no";
    ]

let test_parse_union () =
  let qs =
    Xq_parser.parse_union_exn
      {|WHERE <a>$x</a> IN "s1" CONSTRUCT <r>$x</r>
        UNION
        WHERE <b>$y</b> IN "s2" CONSTRUCT <r>$y</r> LIMIT 3|}
  in
  check int_t "two branches" 2 (List.length qs);
  check (Alcotest.option int_t) "limit on second branch" (Some 3) (List.nth qs 1).Xq_ast.limit;
  check int_t "single query is a one-element union" 1
    (List.length (Xq_parser.parse_union_exn {|WHERE <a>$x</a> IN "s" CONSTRUCT <r>$x</r>|}));
  match Xq_parser.parse_union {|WHERE <a>$x</a> IN "s" CONSTRUCT <r/> UNION garbage|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected union parse error"

let test_pretty_roundtrip () =
  let cases =
    [
      {|WHERE <book year=$y><title>$t</title></book> IN "bib", $y > 1995 CONSTRUCT <r><t>$t</t></r>|};
      {|WHERE <book/> ELEMENT_AS $b IN "bib" CONSTRUCT <o>$b</o>|};
      {|WHERE <book><price>$p</price></book> IN "bib" CONSTRUCT <x>$p</x> ORDER BY $p DESC LIMIT 2|};
      {|WHERE <a x="1"><b>"txt"</b></a> IN "s", $v LIKE 'z%' CONSTRUCT <o n={upper($v)}>$v</o>|};
    ]
  in
  List.iter
    (fun s ->
      let q = parse s in
      let printed = Xq_pretty.query_to_string q in
      let q2 = parse printed in
      let printed2 = Xq_pretty.query_to_string q2 in
      check string_t ("fixpoint: " ^ s) printed printed2)
    cases

(* ------------------------------------------------------------------ *)
(* Pattern matching semantics                                          *)
(* ------------------------------------------------------------------ *)

let pat_of s =
  (* parse a pattern by wrapping it in a trivial query *)
  let q = parse (Printf.sprintf {|WHERE %s IN "bib" CONSTRUCT <x/>|} s) in
  (List.hd q.Xq_ast.clauses).Xq_ast.clause_pattern

let test_match_multimatch () =
  (* A pattern with an <author> child matches once per author. *)
  let p = pat_of "<book><author>$a</author></book>" in
  let first_book = List.hd (Dtree.kids bib_doc) in
  let second_book = List.nth (Dtree.kids bib_doc) 1 in
  check int_t "one author" 1 (List.length (Xq_eval.match_pattern p first_book));
  check int_t "two authors, two bindings" 2
    (List.length (Xq_eval.match_pattern p second_book))

let test_match_shared_var_consistency () =
  (* The same variable in two positions must bind equal values. *)
  let p = pat_of "<book><title>$x</title><price>$x</price></book>" in
  let first_book = List.hd (Dtree.kids bib_doc) in
  check int_t "title <> price, no match" 0 (List.length (Xq_eval.match_pattern p first_book))

let test_match_attr_literal () =
  let p = pat_of {|<book year="1994"/>|} in
  check int_t "matches one book" 1 (List.length (Xq_eval.match_anywhere p bib_doc))

let test_match_wildcard_tag () =
  let p = pat_of "<*><last>$l</last></*>" in
  check int_t "authors matched via wildcard" 4
    (List.length (Xq_eval.match_anywhere p bib_doc))

let test_match_text_pattern () =
  let p = pat_of {|<title>"Old Web"</title>|} in
  check int_t "one title" 1 (List.length (Xq_eval.match_anywhere p bib_doc))

(* ------------------------------------------------------------------ *)
(* Query evaluation                                                    *)
(* ------------------------------------------------------------------ *)

let eval q = Xq_eval.eval resolver (parse q)

let test_eval_filter () =
  let results =
    eval
      {|WHERE <book year=$y><title>$t</title></book> IN "bib", $y >= 1998
        CONSTRUCT <hit>$t</hit>|}
  in
  check int_t "two books" 2 (List.length results)

let test_eval_join_across_sources () =
  let results =
    eval
      {|WHERE <book><title>$t</title><price>$p</price></book> IN "bib",
             <review><title>$t</title><rating>$r</rating></review> IN "reviews"
        CONSTRUCT <scored><t>$t</t><r>$r</r><p>$p</p></scored>|}
  in
  check int_t "two reviewed books" 2 (List.length results);
  let first = Dtree.to_xml_element (List.hd results) in
  check string_t "tag" "scored" first.Xml_types.tag

let test_eval_order_limit () =
  let results =
    eval
      {|WHERE <book><title>$t</title><price>$p</price></book> IN "bib"
        CONSTRUCT <b>$p</b> ORDER BY $p DESC LIMIT 2|}
  in
  let prices = List.map Dtree.text results in
  check (Alcotest.list string_t) "top prices" [ "55"; "39" ] prices

let test_eval_construct_attrs () =
  let results =
    eval
      {|WHERE <book year=$y><title>$t</title></book> IN "bib", $y = 1994
        CONSTRUCT <book y=$y len={length($t)}/>|}
  in
  match results with
  | [ tree ] ->
    check (Alcotest.option value_t) "attr y" (Some (Value.Int 1994)) (Dtree.attr tree "y");
    check (Alcotest.option value_t) "computed len" (Some (Value.Int 15)) (Dtree.attr tree "len")
  | _ -> Alcotest.fail "expected one result"

let test_eval_content_splice () =
  (* $a binds author content; splicing it into the output keeps the
     nested <last> element. *)
  let results =
    eval
      {|WHERE <book year=$y><author>$a</author></book> IN "bib", $y = 1994
        CONSTRUCT <who>$a</who>|}
  in
  match results with
  | [ tree ] -> (
    match Dtree.kids_named tree "last" with
    | [ last ] -> check string_t "kept structure" "Stevens" (Dtree.text last)
    | _ -> Alcotest.fail "expected <last> child")
  | _ -> Alcotest.fail "expected one result"

let test_eval_element_as () =
  let results =
    eval {|WHERE <book year=$y/> ELEMENT_AS $b IN "bib", $y = 2000 CONSTRUCT <keep>$b</keep>|}
  in
  match results with
  | [ tree ] -> (
    match Dtree.kids_named tree "book" with
    | [ book ] -> check int_t "book kept whole" 4 (List.length (Dtree.kids book))
    | _ -> Alcotest.fail "expected embedded <book>")
  | _ -> Alcotest.fail "expected one result"

let test_eval_nested_grouping () =
  (* Group titles by author last name via a correlated subquery. *)
  let results =
    eval
      {|WHERE <book><author><last>$l</last></author></book> IN "bib"
        CONSTRUCT <byauthor><last>$l</last></byauthor>|}
  in
  (* 1 + 2 + 1 author elements across the three books, Abiteboul twice *)
  check int_t "ungrouped has dup" 4 (List.length results);
  let grouped =
    eval
      {|WHERE <book><author><last>$l</last></author></book> IN "bib"
        CONSTRUCT <byauthor><last>$l</last>
          { WHERE <book><author><last>$l</last></author><title>$t</title></book> IN "bib"
            CONSTRUCT <wrote>$t</wrote> }
        </byauthor>|}
  in
  (* still one result per binding, but each embeds that author's books *)
  let abiteboul =
    List.find
      (fun tree ->
        match Dtree.first_named tree "last" with
        | Some l -> Dtree.text l = "Abiteboul"
        | None -> false)
      grouped
  in
  check int_t "correlated subquery found both books" 2
    (List.length (Dtree.kids_named abiteboul "wrote"))

let test_eval_aggregates () =
  (* Per-book author count, total price, and global min price. *)
  let results =
    eval
      {|WHERE <book><title>$t</title></book> IN "bib"
        CONSTRUCT <stats><t>$t</t>
          <authors>{ COUNT WHERE <book><title>$t</title><author>$a</author></book> IN "bib"
                     CONSTRUCT <a>$a</a> }</authors>
        </stats>|}
  in
  check int_t "three books" 3 (List.length results);
  let counts =
    List.map
      (fun tree ->
        match Dtree.first_named tree "authors" with
        | Some c -> Dtree.text c
        | None -> "?")
      results
  in
  check (Alcotest.list string_t) "author counts" [ "1"; "2"; "1" ] counts;
  let totals =
    eval
      {|WHERE <bib/> ELEMENT_AS $b IN "bib"
        CONSTRUCT <summary>
          <total>{ SUM WHERE <book><price>$p</price></book> IN "bib" CONSTRUCT <p>$p</p> }</total>
          <cheapest>{ MIN WHERE <book><price>$p</price></book> IN "bib" CONSTRUCT <p>$p</p> }</cheapest>
          <avg>{ AVG WHERE <book><price>$p</price></book> IN "bib" CONSTRUCT <p>$p</p> }</avg>
        </summary>|}
  in
  (match totals with
  | [ s ] ->
    let get f = match Dtree.first_named s f with Some k -> Dtree.text k | None -> "?" in
    check string_t "sum" "119" (get "total");
    check string_t "min" "25" (get "cheapest");
    check bool_t "avg about 39.7" true
      (match float_of_string_opt (get "avg") with
      | Some f -> abs_float (f -. 39.6666) < 0.01
      | None -> false)
  | _ -> Alcotest.fail "expected one summary");
  (* empty aggregate: count 0, sum null *)
  let empty =
    eval
      {|WHERE <bib/> ELEMENT_AS $b IN "bib"
        CONSTRUCT <z><c>{ COUNT WHERE <book><price>$p</price></book> IN "bib", $p > 1000
                          CONSTRUCT <p>$p</p> }</c></z>|}
  in
  check string_t "count of none" "0" (Dtree.text (List.hd empty))

let test_eval_to_xml () =
  let e =
    Xq_eval.eval_to_xml resolver
      (parse {|WHERE <book><title>$t</title></book> IN "bib" CONSTRUCT <t>$t</t>|})
  in
  check string_t "wrapper" "results" e.Xml_types.tag;
  check int_t "three titles" 3 (List.length (Xml_types.children_named e "t"))

let test_eval_unknown_source () =
  try
    ignore (eval {|WHERE <x/> IN "nope" CONSTRUCT <y/>|});
    Alcotest.fail "expected Eval_error"
  with Xq_eval.Eval_error _ -> ()

let test_condition_tree_access () =
  (* Conditions can use /child and /@attr postfix paths. *)
  let results =
    eval
      {|WHERE <book/> ELEMENT_AS $b IN "bib", $b/price > 30
        CONSTRUCT <x>{$b/title}</x>|}
  in
  check int_t "two expensive books" 2 (List.length results)

let () =
  Alcotest.run "xmlql"
    [
      ( "parser",
        [
          Alcotest.test_case "simple query" `Quick test_parse_simple;
          Alcotest.test_case "multi clause" `Quick test_parse_multi_clause;
          Alcotest.test_case "element_as" `Quick test_parse_element_as;
          Alcotest.test_case "order/limit" `Quick test_parse_order_limit;
          Alcotest.test_case "nested subquery" `Quick test_parse_nested_subquery;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "union parsing" `Quick test_parse_union;
          Alcotest.test_case "pretty roundtrip" `Quick test_pretty_roundtrip;
        ] );
      ( "matching",
        [
          Alcotest.test_case "multi-match per child" `Quick test_match_multimatch;
          Alcotest.test_case "shared variable consistency" `Quick test_match_shared_var_consistency;
          Alcotest.test_case "attribute literal" `Quick test_match_attr_literal;
          Alcotest.test_case "wildcard tag" `Quick test_match_wildcard_tag;
          Alcotest.test_case "text pattern" `Quick test_match_text_pattern;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "filter" `Quick test_eval_filter;
          Alcotest.test_case "join across sources" `Quick test_eval_join_across_sources;
          Alcotest.test_case "order by / limit" `Quick test_eval_order_limit;
          Alcotest.test_case "construct attributes" `Quick test_eval_construct_attrs;
          Alcotest.test_case "content splice" `Quick test_eval_content_splice;
          Alcotest.test_case "element_as splice" `Quick test_eval_element_as;
          Alcotest.test_case "nested grouping" `Quick test_eval_nested_grouping;
          Alcotest.test_case "aggregates" `Quick test_eval_aggregates;
          Alcotest.test_case "to_xml wrapper" `Quick test_eval_to_xml;
          Alcotest.test_case "unknown source" `Quick test_eval_unknown_source;
          Alcotest.test_case "condition tree access" `Quick test_condition_tree_access;
        ] );
    ]
