(* Concurrency server: admission control, the lens plan cache,
   load-balanced dispatch and the deterministic workload driver.

   The two QCheck properties are the server's core contracts:
   - any interleaving of admitted requests produces byte-identical
     per-request results to serial execution (one request at a time),
     including Partial-mode requests against an offline source;
   - executing through a warm plan cache with fresh parameter values
     is byte-identical to cold parse+plan+execute, across all three
     execution engines (tuple, batch, parallel). *)

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

(* Every run starts from a fresh federation and a zeroed virtual clock
   so the discrete-event timeline is reproducible. *)
let fresh_system () =
  Obs_clock.reset_virtual ();
  Srv_workload.demo_system ()

let open_demo_sessions srv =
  List.iter
    (fun (user, password) ->
      match Srv_dispatch.open_session srv ~user ~password with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "open %s: %s" user m)
    Srv_workload.demo_users

(* Force a registered source offline: swap in a copy whose operations
   raise [Source.Unavailable], same as Srv_script's [offline]
   directive. *)
let force_offline sys name =
  let reg = Med_catalog.registry (Nimble.catalog sys) in
  match Src_registry.find reg name with
  | None -> Alcotest.failf "no source %s to take offline" name
  | Some src ->
    Src_registry.remove reg name;
    Src_registry.register reg
      {
        src with
        Source.is_available = (fun () -> false);
        execute = (fun _ -> raise (Source.Unavailable name));
        documents = (fun _ -> raise (Source.Unavailable name));
      }

(* ------------------------------------------------------------------ *)
(* QCheck: interleaving equivalence                                    *)
(* ------------------------------------------------------------------ *)

(* A symbolic request the generator can replay against any server. *)
type sym_req = {
  sr_session : string;
  sr_lens : string;
  sr_query : string;
  sr_args : (string * string) list;
  sr_priority : Srv_request.priority;
  sr_mode : Srv_request.failure_mode;
  sr_exec : Alg_batch.mode option;
}

let gen_sym_req =
  let open QCheck2.Gen in
  let* session = oneofl [ "admin"; "alice"; "bob" ] in
  let* lens, query =
    (* bob (viewer) on sales exercises denial; catalog against an
       offline products source exercises strict failure vs partial
       skipping. *)
    oneofl [ ("sales", "by_region"); ("sales", "big_orders"); ("catalog", "all") ]
  in
  let* region = oneofl [ "west"; "east"; "north"; "south" ] in
  let* min = map string_of_int (int_bound 400) in
  let* priority = oneofl [ Srv_request.High; Normal; Low ] in
  let* mode = oneofl [ Srv_request.Strict; Partial ] in
  let* exec =
    oneofl
      [
        None;
        Some Alg_batch.Tuple;
        Some (Alg_batch.Batch { chunk = 2 });
        Some (Alg_batch.Parallel { domains = 2; chunk = 2 });
      ]
  in
  pure
    {
      sr_session = session;
      sr_lens = lens;
      sr_query = query;
      sr_args = [ ("region", region); ("min", min) ];
      sr_priority = priority;
      sr_mode = mode;
      sr_exec = exec;
    }

type workload = {
  wl_reqs : sym_req list;
  wl_bursts : int list;  (** submissions per arrival instant *)
  wl_engines : int;
  wl_offline : bool;     (** products source down for the whole run *)
}

let gen_workload =
  let open QCheck2.Gen in
  let* n = int_range 1 12 in
  let* reqs = list_size (pure n) gen_sym_req in
  let* bursts = list_size (pure n) (int_range 1 4) in
  let* engines = int_range 1 3 in
  let* offline = bool in
  pure { wl_reqs = reqs; wl_bursts = bursts; wl_engines = engines; wl_offline = offline }

let print_workload wl =
  Printf.sprintf "engines=%d offline=%b reqs=[%s] bursts=[%s]" wl.wl_engines wl.wl_offline
    (String.concat "; "
       (List.map
          (fun r ->
            Printf.sprintf "%s %s.%s %s %s %s %s" r.sr_session r.sr_lens r.sr_query
              (String.concat ","
                 (List.map (fun (k, v) -> k ^ "=" ^ v) r.sr_args))
              (Srv_request.priority_to_string r.sr_priority)
              (match r.sr_mode with Strict -> "strict" | Partial -> "partial")
              (match r.sr_exec with
              | None -> "default"
              | Some m -> Alg_batch.mode_to_string m))
          wl.wl_reqs))
    (String.concat "," (List.map string_of_int wl.wl_bursts))

(* What "byte-identical result" means per request: the rendered output,
   row count and skipped sources for completions; the full rejection
   message otherwise.  Timing cells are excluded on purpose — they are
   what interleaving is allowed to change. *)
let essence = function
  | Srv_request.Completed r ->
    Printf.sprintf "ok rows=%d skipped=%s output=%s" r.Srv_request.rep_rows
      (String.concat "," r.rep_skipped)
      r.rep_output
  | Srv_request.Rejected rej -> "rejected " ^ Srv_request.reject_to_string rej

let submit_sym srv r =
  Srv_dispatch.submit srv ~session:r.sr_session ~lens:r.sr_lens ~query:r.sr_query
    ~args:r.sr_args ~priority:r.sr_priority ~mode:r.sr_mode
    ?exec:r.sr_exec ()

(* Admit everything: the equivalence property is about execution order,
   not shedding (shedding determinism has its own unit tests). *)
let roomy engines =
  {
    Srv_dispatch.engines;
    queue = { Srv_admit.queue_capacity = 1000; max_session_in_flight = 1000 };
    plan_cache_capacity = 32;
    service_overhead_ms = 1.0;
  }

let run_serial wl =
  let sys = fresh_system () in
  if wl.wl_offline then force_offline sys "products";
  let srv = Srv_dispatch.create ~config:(roomy 1) sys in
  open_demo_sessions srv;
  List.iter
    (fun r ->
      (match submit_sym srv r with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "serial submit: %s" m);
      Srv_dispatch.drain srv)
    wl.wl_reqs;
  List.map (fun (id, o) -> (id, essence o)) (Srv_dispatch.outcomes srv)

let run_interleaved wl =
  let sys = fresh_system () in
  if wl.wl_offline then force_offline sys "products";
  let srv = Srv_dispatch.create ~config:(roomy wl.wl_engines) sys in
  open_demo_sessions srv;
  let rec go reqs bursts =
    match reqs with
    | [] -> ()
    | _ ->
      let burst, rest_bursts =
        match bursts with b :: tl -> (b, tl) | [] -> (1, [])
      in
      let now, later =
        ( List.filteri (fun i _ -> i < burst) reqs,
          List.filteri (fun i _ -> i >= burst) reqs )
      in
      List.iter
        (fun r ->
          match submit_sym srv r with
          | Ok _ -> ()
          | Error m -> Alcotest.failf "interleaved submit: %s" m)
        now;
      Obs_clock.advance 3.0;
      Srv_dispatch.tick srv;
      go later rest_bursts
  in
  go wl.wl_reqs wl.wl_bursts;
  Srv_dispatch.drain srv;
  List.map (fun (id, o) -> (id, essence o)) (Srv_dispatch.outcomes srv)

let prop_interleaving_serial_equiv =
  QCheck2.Test.make ~name:"interleaved == serial (byte-identical per request)"
    ~count:60 ~print:print_workload gen_workload (fun wl ->
      run_interleaved wl = run_serial wl)

(* ------------------------------------------------------------------ *)
(* QCheck: warm plan cache == cold compile                             *)
(* ------------------------------------------------------------------ *)

(* A stream of invocations with fresh parameter values and varying
   execution engines; the warm server reuses cached plans (rebinding
   parameters), the cold server re-parses and re-plans every time. *)
let gen_invocations =
  let open QCheck2.Gen in
  let* n = int_range 2 10 in
  list_size (pure n)
    (let* lens, query =
       oneofl [ ("sales", "by_region"); ("sales", "big_orders"); ("catalog", "all") ]
     in
     let* region = oneofl [ "west"; "east"; "north"; "south"; "x&y<z" ] in
     let* min = map string_of_int (int_bound 500) in
     let* exec =
       oneofl
         [
           Alg_batch.Tuple;
           Alg_batch.Batch { chunk = 3 };
           Alg_batch.Parallel { domains = 2; chunk = 2 };
         ]
     in
     pure (lens, query, [ ("region", region); ("min", min) ], exec))

let print_invocations invs =
  String.concat "; "
    (List.map
       (fun (lens, query, args, exec) ->
         Printf.sprintf "%s.%s %s %s" lens query
           (String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) args))
           (Alg_batch.mode_to_string exec))
       invs)

let run_with_cache_capacity cap invs =
  let sys = fresh_system () in
  let config = { (roomy 1) with Srv_dispatch.plan_cache_capacity = cap } in
  let srv = Srv_dispatch.create ~config sys in
  open_demo_sessions srv;
  List.iter
    (fun (lens, query, args, exec) ->
      (match
         Srv_dispatch.submit srv ~session:"admin" ~lens ~query ~args ~exec ()
       with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "submit: %s" m);
      Srv_dispatch.drain srv)
    invs;
  let outs = List.map (fun (id, o) -> (id, essence o)) (Srv_dispatch.outcomes srv) in
  (outs, Srv_plancache.stats (Srv_dispatch.plan_cache srv))

let prop_plan_cache_warm_equals_cold =
  QCheck2.Test.make ~name:"warm plan cache == cold compile (all exec modes)"
    ~count:60 ~print:print_invocations gen_invocations (fun invs ->
      let warm, warm_stats = run_with_cache_capacity 32 invs in
      let cold, cold_stats = run_with_cache_capacity 0 invs in
      warm = cold
      && cold_stats.Srv_plancache.hits = 0
      && warm_stats.Srv_plancache.hits + warm_stats.Srv_plancache.misses
         = List.length invs)

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let mk_session name =
  {
    Srv_session.ses_name = name;
    ses_role = Fe_auth.Analyst;
    ses_opened_ms = 0.0;
    ses_lenses = [];
    ses_in_flight = 0;
    ses_submitted = 0;
    ses_completed = 0;
    ses_rejected = 0;
  }

let mk_req ?(priority = Srv_request.Normal) ?deadline_ms id session =
  {
    Srv_request.req_id = id;
    req_session = session;
    req_lens = "l";
    req_query = "q";
    req_args = [];
    req_priority = priority;
    req_deadline_ms = deadline_ms;
    req_mode = Strict;
    req_exec = None;
  }

let take_ready q ~now_ms =
  match Srv_admit.take q ~now_ms with
  | Srv_admit.Ready e -> e.Srv_admit.ent_request.Srv_request.req_id
  | Empty -> Alcotest.fail "queue unexpectedly empty"
  | Expired _ -> Alcotest.fail "unexpected expiry"

let test_admit_priority_then_fairness_then_seq () =
  let q = Srv_admit.create { queue_capacity = 16; max_session_in_flight = 16 } in
  let a = mk_session "a" and b = mk_session "b" in
  let offer s r =
    match Srv_admit.offer q s r with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "offer shed unexpectedly"
  in
  (* Same priority: a a b arrive; dequeue must round-robin a b a. *)
  offer a (mk_req 0 "a");
  offer a (mk_req 1 "a");
  offer b (mk_req 2 "b");
  check int_t "first by seq" 0 (take_ready q ~now_ms:0.0);
  check int_t "b before a's second (fairness)" 2 (take_ready q ~now_ms:0.0);
  check int_t "then a again" 1 (take_ready q ~now_ms:0.0);
  (* Priority dominates fairness and arrival order. *)
  offer a (mk_req 3 "a" ~priority:Low);
  offer b (mk_req 4 "b" ~priority:High);
  offer a (mk_req 5 "a" ~priority:Normal);
  check int_t "high first" 4 (take_ready q ~now_ms:0.0);
  check int_t "normal second" 5 (take_ready q ~now_ms:0.0);
  check int_t "low last" 3 (take_ready q ~now_ms:0.0);
  (match Srv_admit.take q ~now_ms:0.0 with
  | Srv_admit.Empty -> ()
  | _ -> Alcotest.fail "expected empty queue")

let test_admit_sheds_deterministically () =
  let q = Srv_admit.create { queue_capacity = 2; max_session_in_flight = 2 } in
  let a = mk_session "a" and b = mk_session "b" in
  check bool_t "1 fits" true (Srv_admit.offer q a (mk_req 0 "a") = Ok ());
  check bool_t "2 fits" true (Srv_admit.offer q a (mk_req 1 "a") = Ok ());
  (* Queue full: overload beats the session-cap check and sheds without
     touching counters. *)
  check bool_t "3 overloaded" true
    (Srv_admit.offer q b (mk_req 2 "b") = Error Srv_request.Overloaded);
  check int_t "b untouched" 0 b.Srv_session.ses_in_flight;
  ignore (take_ready q ~now_ms:0.0);
  (* One slot free but a is at its in-flight cap (take does not
     decrement: the request is still executing). *)
  check bool_t "a saturated" true
    (Srv_admit.offer q a (mk_req 3 "a") = Error Srv_request.Session_saturated);
  check bool_t "b admitted" true (Srv_admit.offer q b (mk_req 4 "b") = Ok ());
  check int_t "a still at cap" 2 a.Srv_session.ses_in_flight

let test_admit_deadline_expiry () =
  (* [offer] stamps enqueue times from the process-wide virtual clock. *)
  Obs_clock.reset_virtual ();
  let q = Srv_admit.create { queue_capacity = 8; max_session_in_flight = 8 } in
  let a = mk_session "a" in
  (match Srv_admit.offer q a (mk_req 0 "a" ~deadline_ms:5.0) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "offer shed");
  (match Srv_admit.offer q a (mk_req 1 "a") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "offer shed");
  (* Past the deadline: the expired entry surfaces exactly once, then
     the live one dispatches. *)
  (match Srv_admit.take q ~now_ms:10.0 with
  | Srv_admit.Expired e -> check int_t "expired id" 0 e.ent_request.Srv_request.req_id
  | _ -> Alcotest.fail "expected expiry");
  check int_t "survivor dispatches" 1 (take_ready q ~now_ms:10.0);
  check bool_t "expiry counted" true
    (contains (Srv_admit.stats_line q) "expired=1")

(* ------------------------------------------------------------------ *)
(* Plan cache                                                          *)
(* ------------------------------------------------------------------ *)

let invoke srv lens query args =
  (match Srv_dispatch.submit srv ~session:"admin" ~lens ~query ~args () with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "submit: %s" m);
  Srv_dispatch.drain srv

let test_plan_cache_hits_and_shapes () =
  let srv = Srv_dispatch.create (fresh_system ()) in
  open_demo_sessions srv;
  let pc = Srv_dispatch.plan_cache srv in
  invoke srv "sales" "by_region" [ ("region", "west") ];
  invoke srv "sales" "by_region" [ ("region", "east") ];
  invoke srv "sales" "by_region" [ ("region", "north") ];
  let s = Srv_plancache.stats pc in
  check int_t "one miss" 1 s.misses;
  check int_t "rebinds hit" 2 s.hits;
  check int_t "one parametric entry" 1 (Srv_plancache.size pc);
  check bool_t "shape keyed by class" true
    (contains (Srv_plancache.report pc) "sales/by_region?region:str");
  (* Fresh values through the rebound plan match a cold system. *)
  let cold = Srv_dispatch.create (fresh_system ()) in
  open_demo_sessions cold;
  invoke cold "sales" "by_region" [ ("region", "north") ];
  let out srv' id =
    match Srv_dispatch.outcome srv' id with
    | Some (Srv_request.Completed r) -> r.Srv_request.rep_output
    | _ -> Alcotest.fail "expected completion"
  in
  check string_t "rebound output == cold output" (out cold 0) (out srv 2)

let test_plan_cache_invalidation_and_lru () =
  let sys = fresh_system () in
  let config = { Srv_dispatch.default_config with plan_cache_capacity = 1 } in
  let srv = Srv_dispatch.create ~config sys in
  open_demo_sessions srv;
  let pc = Srv_dispatch.plan_cache srv in
  invoke srv "sales" "by_region" [ ("region", "west") ];
  invoke srv "catalog" "all" [];
  (* Capacity 1: the second shape evicts the first. *)
  let s = Srv_plancache.stats pc in
  check int_t "lru evicted" 1 s.evictions;
  check int_t "size capped" 1 (Srv_plancache.size pc);
  (* Catalog mutation drops entries depending on the mutated source. *)
  ignore (Nimble.invalidate_source sys "products");
  let s = Srv_plancache.stats pc in
  check int_t "mutation invalidated" 1 s.invalidations;
  check int_t "empty after invalidation" 0 (Srv_plancache.size pc);
  (* Untouched sources leave entries alone. *)
  invoke srv "sales" "by_region" [ ("region", "west") ];
  ignore (Nimble.invalidate_source sys "products");
  check int_t "crm entry survives products invalidation" 1 (Srv_plancache.size pc)

let test_plan_cache_inlines_nonrebindable () =
  (* A negative integer is not rebindable: it must be inlined into the
     shape, giving each value its own entry — and still execute
     correctly. *)
  let srv = Srv_dispatch.create (fresh_system ()) in
  open_demo_sessions srv;
  invoke srv "sales" "big_orders" [ ("min", "-5") ];
  invoke srv "sales" "big_orders" [ ("min", "-5") ];
  invoke srv "sales" "big_orders" [ ("min", "-7") ];
  let s = Srv_plancache.stats (Srv_dispatch.plan_cache srv) in
  check int_t "repeat of same inlined value hits" 1 s.hits;
  check int_t "distinct inlined values miss" 2 s.misses

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let test_dispatch_balances_and_reports () =
  let config =
    { (roomy 2) with Srv_dispatch.service_overhead_ms = 2.0 }
  in
  let srv = Srv_dispatch.create ~config (fresh_system ()) in
  open_demo_sessions srv;
  for _ = 1 to 4 do
    match
      Srv_dispatch.submit srv ~session:"admin" ~lens:"catalog" ~query:"all" ()
    with
    | Ok _ -> ()
    | Error m -> Alcotest.failf "submit: %s" m
  done;
  Srv_dispatch.drain srv;
  (match Srv_dispatch.engine_lines srv with
  | [ e0; e1 ] ->
    check bool_t "engine 0 took half" true (contains e0 "served=2");
    check bool_t "engine 1 took half" true (contains e1 "served=2")
  | lines -> Alcotest.failf "expected 2 engines, got %d" (List.length lines));
  let report = Srv_dispatch.report srv in
  check bool_t "report lists queue" true (contains report "queue: depth=0");
  check bool_t "report lists plan cache" true (contains report "plan cache:");
  check bool_t "report lists sessions" true (contains report "admin (admin)");
  match Srv_dispatch.outcome srv 2 with
  | Some (Srv_request.Completed r) ->
    check bool_t "queued behind busy engines" true
      (Srv_request.queue_wait_ms r > 0.0)
  | _ -> Alcotest.fail "request 2 should complete"

let test_dispatch_denies_by_role () =
  let srv = Srv_dispatch.create (fresh_system ()) in
  open_demo_sessions srv;
  (match
     Srv_dispatch.submit srv ~session:"bob" ~lens:"sales" ~query:"by_region" ()
   with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "denial must settle as an outcome, not: %s" m);
  (match Srv_dispatch.outcome srv 0 with
  | Some (Srv_request.Rejected (Srv_request.Denied m)) ->
    check bool_t "names the role gap" true (contains m "viewer")
  | _ -> Alcotest.fail "expected Denied outcome");
  match Srv_dispatch.find_session srv "bob" with
  | Some s -> check int_t "rejection counted" 1 s.Srv_session.ses_rejected
  | None -> Alcotest.fail "bob's session vanished"

(* ------------------------------------------------------------------ *)
(* Workload driver                                                     *)
(* ------------------------------------------------------------------ *)

let run_demo_workload () =
  let srv = Srv_dispatch.create (fresh_system ()) in
  open_demo_sessions srv;
  let summary = Srv_workload.run srv Srv_workload.demo_spec in
  (summary, Srv_workload.summary_line summary)

let test_workload_deterministic () =
  let s1, l1 = run_demo_workload () in
  let s2, l2 = run_demo_workload () in
  check string_t "equal seeds, byte-identical summaries" l1 l2;
  check bool_t "records are equal" true (s1 = s2);
  check int_t "all submissions accounted" s1.Srv_workload.ws_submitted
    (s1.ws_completed + s1.ws_rejected);
  check bool_t "warm shapes hit" true (s1.ws_plan_hits > 0)

let test_workload_seed_changes_stream () =
  let base, _ = run_demo_workload () in
  let srv = Srv_dispatch.create (fresh_system ()) in
  open_demo_sessions srv;
  let other =
    Srv_workload.run srv { Srv_workload.demo_spec with seed = 43 }
  in
  check int_t "same volume" base.Srv_workload.ws_submitted other.Srv_workload.ws_submitted;
  check bool_t "different seed, different timeline" true
    (base.ws_elapsed_ms <> other.ws_elapsed_ms || base <> other)

(* ------------------------------------------------------------------ *)
(* Script driver                                                       *)
(* ------------------------------------------------------------------ *)

let test_script_reports_line_numbers () =
  let out = Buffer.create 64 in
  Obs_clock.reset_virtual ();
  let env =
    Srv_script.create ~print:(fun s -> Buffer.add_string out (s ^ "\n"))
      (Nimble.create ())
  in
  (match Srv_script.run env "demo\nopen alice wonder\nnonsense directive\n" with
  | Error m -> check bool_t "names the line" true (contains m "line 3")
  | Ok () -> Alcotest.fail "expected a script error");
  check bool_t "earlier lines ran" true (contains (Buffer.contents out) "session alice open")

(* ------------------------------------------------------------------ *)
(* Metrics hygiene                                                     *)
(* ------------------------------------------------------------------ *)

let well_formed name =
  let component_ok c =
    String.length c > 0
    && String.for_all
         (fun ch -> (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') || ch = '_')
         c
  in
  let parts = String.split_on_char '.' name in
  List.length parts >= 2 && List.for_all component_ok parts

let test_metrics_hygiene () =
  (* Drive the full server path once so every srv.* metric registers. *)
  ignore (run_demo_workload ());
  let names = Obs_metrics.names () in
  check int_t "no duplicate names"
    (List.length names)
    (List.length (List.sort_uniq String.compare names));
  List.iter
    (fun n ->
      if not (well_formed n) then Alcotest.failf "ill-formed metric name: %s" n)
    names;
  let srv_metrics = List.filter (fun n -> String.starts_with ~prefix:"srv." n) names in
  List.iter
    (fun n ->
      if not (List.mem n srv_metrics) then
        Alcotest.failf "server metric missing: %s" n)
    [
      "srv.admit.admitted";
      "srv.admit.shed_overload";
      "srv.admit.shed_saturated";
      "srv.admit.shed_expired";
      "srv.queue.depth";
      "srv.queue.wait_ms";
      "srv.plancache.hits";
      "srv.plancache.misses";
      "srv.plancache.evictions";
      "srv.plancache.invalidations";
      "srv.plancache.size";
      "srv.requests.submitted";
      "srv.requests.completed";
      "srv.requests.rejected";
      "srv.engine.0.requests";
      "srv.engine.1.requests";
    ]

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "server"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_interleaving_serial_equiv; prop_plan_cache_warm_equals_cold ] );
      ( "admission",
        [
          Alcotest.test_case "priority > fairness > arrival" `Quick
            test_admit_priority_then_fairness_then_seq;
          Alcotest.test_case "deterministic shedding" `Quick
            test_admit_sheds_deterministically;
          Alcotest.test_case "deadline expiry" `Quick test_admit_deadline_expiry;
        ] );
      ( "plan-cache",
        [
          Alcotest.test_case "parametric hits + shapes" `Quick
            test_plan_cache_hits_and_shapes;
          Alcotest.test_case "invalidation + lru" `Quick
            test_plan_cache_invalidation_and_lru;
          Alcotest.test_case "non-rebindable values inline" `Quick
            test_plan_cache_inlines_nonrebindable;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "least-loaded balance + report" `Quick
            test_dispatch_balances_and_reports;
          Alcotest.test_case "role denial settles" `Quick test_dispatch_denies_by_role;
        ] );
      ( "workload",
        [
          Alcotest.test_case "deterministic under equal seeds" `Quick
            test_workload_deterministic;
          Alcotest.test_case "seed steers the stream" `Quick
            test_workload_seed_changes_stream;
        ] );
      ( "script",
        [
          Alcotest.test_case "line-numbered errors" `Quick
            test_script_reports_line_numbers;
        ] );
      ( "metrics",
        [ Alcotest.test_case "hygiene" `Quick test_metrics_hygiene ] );
    ]
