(* Fuzz tests: every parser in the system must either succeed or fail
   through its documented error channel — never a stray exception, an
   assertion failure or a stack overflow — on arbitrary input. *)

let check = Alcotest.check
let bool_t = Alcotest.bool

(* Characters likely to stress each grammar. *)
let xmlish_chars = "<>/=\"'& ;abcZ019!-[]?%#\\\n\t"
let sqlish_chars = "SELECTFROMWHERE*(),.'=<>-+09az _;\n"
let xqlish_chars = "<>/=$\"'{}WHERECONSTRUCTIN,.az09 _-\n"

let gen_noise chars =
  QCheck2.Gen.(
    string_size ~gen:(map (String.get chars) (int_bound (String.length chars - 1)))
      (int_range 0 120))

(* Mutate a valid input: overwrite one position with a random char. *)
let mutate chars valid =
  let open QCheck2.Gen in
  if String.length valid = 0 then pure valid
  else
    map
      (fun (pos, ci) ->
        let b = Bytes.of_string valid in
        Bytes.set b pos chars.[ci];
        Bytes.to_string b)
      (pair (int_bound (String.length valid - 1)) (int_bound (String.length chars - 1)))

let valid_xml =
  {|<catalog><product sku="P1"><name>widget &amp; co</name><price>25</price></product><!-- c --><x/></catalog>|}

let valid_sql =
  "SELECT a.x, COUNT(*) AS n FROM t a JOIN u ON a.id = u.id WHERE a.x > 3 AND u.y LIKE 'a%' GROUP BY a.x ORDER BY n DESC LIMIT 5"

let valid_xq =
  {|WHERE <book year=$y><title>$t</title></book> IN "bib", $y > 1995 CONSTRUCT <r t=$t>{upper($t)}</r> ORDER BY $y LIMIT 3|}

let valid_path = "/catalog//product[@sku='P1'][price>'10']/name"

let total_or_error name parse classify =
  QCheck2.Test.make ~name ~count:500
    QCheck2.Gen.(
      oneof
        [
          gen_noise xmlish_chars;
          gen_noise sqlish_chars;
          gen_noise xqlish_chars;
          mutate xmlish_chars valid_xml;
          mutate sqlish_chars valid_sql;
          mutate xqlish_chars valid_xq;
          mutate xqlish_chars valid_path;
        ])
    (fun input ->
      match parse input with
      | _ -> true
      | exception e -> classify e)

let fuzz_xml =
  total_or_error "xml parser is total" Xml_parser.parse_document (fun _ -> false)

let fuzz_xml_exn =
  total_or_error "xml parser raises only Parse_error"
    (fun s -> ignore (Xml_parser.parse_document_exn s))
    (function Xml_parser.Parse_error _ -> true | _ -> false)

let fuzz_sql =
  total_or_error "sql parser raises only Parse_error"
    (fun s -> ignore (Sql_parser.parse_exn s))
    (function Sql_parser.Parse_error _ -> true | _ -> false)

let fuzz_xq =
  total_or_error "xml-ql parser raises only Parse_error"
    (fun s -> ignore (Xq_parser.parse_exn s))
    (function Xq_parser.Parse_error _ -> true | _ -> false)

let fuzz_path =
  total_or_error "path parser raises only Syntax_error"
    (fun s -> ignore (Xml_path.parse_exn s))
    (function Xml_path.Syntax_error _ -> true | _ -> false)

let fuzz_csv =
  total_or_error "csv parser is total" (fun s -> ignore (Csv.parse s)) (fun _ -> false)

let fuzz_value_guess =
  total_or_error "value guessing is total"
    (fun s -> ignore (Value.of_string_guess s))
    (fun _ -> false)

(* Deeply nested input must not blow the stack. *)
let test_deep_nesting () =
  let depth = 50_000 in
  let buf = Buffer.create (depth * 7) in
  for _ = 1 to depth do
    Buffer.add_string buf "<a>"
  done;
  Buffer.add_string buf "x";
  for _ = 1 to depth do
    Buffer.add_string buf "</a>"
  done;
  match Xml_parser.parse_element (Buffer.contents buf) with
  | Ok e -> check bool_t "deep doc parsed" true (Xml_types.depth e = depth)
  | Error _ -> check bool_t "deep doc rejected cleanly" true true

let test_pathological_like () =
  (* Backtracking LIKE matchers can go exponential on this shape. *)
  let s = String.make 60 'a' in
  let pattern = String.concat "" (List.init 20 (fun _ -> "a%")) ^ "b" in
  check bool_t "no blowup, no match" false (Sql_eval.like_match ~pattern s)

let test_huge_numbers_and_literals () =
  List.iter
    (fun s ->
      match Sql_parser.parse s with
      | Ok _ | Error _ -> ())
    [
      "SELECT 999999999999999999999999999 FROM t";
      "SELECT 1e308 FROM t";
      "SELECT '" ^ String.make 10000 'x' ^ "' FROM t";
      "SELECT a FROM t WHERE x = -9223372036854775808";
    ]

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [ fuzz_xml; fuzz_xml_exn; fuzz_sql; fuzz_xq; fuzz_path; fuzz_csv; fuzz_value_guess ]
  in
  Alcotest.run "fuzz"
    [
      ( "parsers",
        props
        @ [
            Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
            Alcotest.test_case "pathological LIKE" `Quick test_pathological_like;
            Alcotest.test_case "extreme literals" `Quick test_huge_numbers_and_literals;
          ] );
    ]
