(* Tests for the relational substrate: B+tree, table storage, SQL
   lexer/parser/printer, evaluation, planning and execution. *)

let check = Alcotest.check
let string_t = Alcotest.string
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let value_t = Alcotest.testable (fun ppf v -> Value.pp ppf v) Value.equal

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0


(* ------------------------------------------------------------------ *)
(* B+tree                                                              *)
(* ------------------------------------------------------------------ *)

let test_btree_insert_find () =
  let bt = Rel_btree.create ~cmp:Int.compare () in
  for i = 0 to 999 do
    Rel_btree.insert bt (i mod 100) i
  done;
  check int_t "size" 1000 (Rel_btree.size bt);
  check int_t "ten per key" 10 (List.length (Rel_btree.find_all bt 5));
  check (Alcotest.list int_t) "insertion order"
    [ 5; 105; 205; 305; 405; 505; 605; 705; 805; 905 ]
    (Rel_btree.find_all bt 5);
  check bool_t "invariants" true (Rel_btree.check_invariants bt)

let test_btree_range () =
  let bt = Rel_btree.create ~order:4 ~cmp:Int.compare () in
  List.iter (fun i -> Rel_btree.insert bt i (i * 10)) [ 5; 1; 9; 3; 7; 2; 8; 4; 6; 0 ];
  let keys lo hi = List.map fst (Rel_btree.range bt ?lo ?hi ()) in
  check (Alcotest.list int_t) "closed range" [ 3; 4; 5 ] (keys (Some (3, true)) (Some (5, true)));
  check (Alcotest.list int_t) "open range" [ 4 ] (keys (Some (3, false)) (Some (5, false)));
  check (Alcotest.list int_t) "unbounded low" [ 0; 1; 2 ] (keys None (Some (2, true)));
  check (Alcotest.list int_t) "unbounded high" [ 8; 9 ] (keys (Some (8, true)) None);
  check (Alcotest.list int_t) "full" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (keys None None)

let test_btree_remove () =
  let bt = Rel_btree.create ~order:4 ~cmp:Int.compare () in
  for i = 0 to 99 do
    Rel_btree.insert bt i i
  done;
  check bool_t "remove present" true (Rel_btree.remove bt 50 50);
  check bool_t "remove absent" false (Rel_btree.remove bt 50 50);
  check int_t "size after" 99 (Rel_btree.size bt);
  check bool_t "gone" false (Rel_btree.mem bt 50);
  check bool_t "invariants hold" true (Rel_btree.check_invariants bt)

let test_btree_height_logarithmic () =
  let bt = Rel_btree.create ~order:8 ~cmp:Int.compare () in
  for i = 0 to 9999 do
    Rel_btree.insert bt i i
  done;
  check bool_t "height stays small" true (Rel_btree.height bt <= 7)

let prop_btree_matches_model =
  QCheck2.Test.make ~name:"btree agrees with assoc-list model" ~count:100
    QCheck2.Gen.(small_list (pair (int_bound 20) (oneofl [ `Ins; `Del ])))
    (fun ops ->
      let bt = Rel_btree.create ~order:4 ~cmp:Int.compare () in
      let model = Hashtbl.create 16 in
      let counter = ref 0 in
      List.iter
        (fun (k, op) ->
          match op with
          | `Ins ->
            incr counter;
            Rel_btree.insert bt k !counter;
            Hashtbl.replace model k (Option.value ~default:[] (Hashtbl.find_opt model k) @ [ !counter ])
          | `Del -> (
            match Hashtbl.find_opt model k with
            | Some (v :: rest) ->
              ignore (Rel_btree.remove bt k v);
              if rest = [] then Hashtbl.remove model k else Hashtbl.replace model k rest
            | Some [] | None -> ignore (Rel_btree.remove bt k (-1))))
        ops;
      Rel_btree.check_invariants bt
      && Hashtbl.fold (fun k vs acc -> acc && Rel_btree.find_all bt k = vs) model true)

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let people_schema () =
  Dschema.relational "people"
    [
      Dschema.column "id" Value.TInt;
      Dschema.column "name" Value.TString;
      Dschema.column ~nullable:true "age" Value.TInt;
    ]

let mk_people () =
  let t = Rel_table.create ~primary_key:"id" (people_schema ()) in
  let add id name age =
    ignore
      (Rel_table.insert t
         (Tuple.make [ ("id", Value.Int id); ("name", Value.String name); ("age", age) ]))
  in
  add 1 "Ann" (Value.Int 34);
  add 2 "Bob" (Value.Int 28);
  add 3 "Cid" Value.Null;
  t

let test_table_insert_scan () =
  let t = mk_people () in
  check int_t "rows" 3 (Rel_table.row_count t);
  check int_t "scan sees all" 3 (List.length (Rel_table.to_list t))

let test_table_pk_violation () =
  let t = mk_people () in
  try
    ignore
      (Rel_table.insert t
         (Tuple.make [ ("id", Value.Int 1); ("name", Value.String "dup"); ("age", Value.Null) ]));
    Alcotest.fail "expected PK violation"
  with Rel_table.Constraint_violation _ -> ()

let test_table_delete_update () =
  let t = mk_people () in
  let n = Rel_table.delete_where t (fun tup -> Tuple.get_exn tup "id" = Value.Int 2) in
  check int_t "one deleted" 1 n;
  check int_t "two left" 2 (Rel_table.row_count t);
  let n =
    Rel_table.update_where t
      (fun tup -> Tuple.get_exn tup "name" = Value.String "Ann")
      (fun tup -> Tuple.set tup "age" (Value.Int 35))
  in
  check int_t "one updated" 1 n

let test_table_index_lookup () =
  let t = mk_people () in
  Rel_table.create_index t ~kind:Rel_table.Hash_index "name";
  let rows = Rel_table.lookup_eq t "name" (Value.String "Bob") in
  check int_t "found via hash index" 1 (List.length rows);
  Rel_table.create_index t ~kind:Rel_table.Btree_index "id";
  let rows = Rel_table.lookup_range t "id" ~lo:(Value.Int 2, true) () in
  check int_t "range via btree" 2 (List.length rows);
  check bool_t "eq served" true (Rel_table.index_served t "name" `Eq);
  check bool_t "range not served by hash" false (Rel_table.index_served t "name" `Range);
  check bool_t "range served by btree" true (Rel_table.index_served t "id" `Range)

let test_table_index_maintained_on_mutation () =
  let t = mk_people () in
  Rel_table.create_index t ~kind:Rel_table.Btree_index "id";
  ignore (Rel_table.delete_where t (fun tup -> Tuple.get_exn tup "id" = Value.Int 2));
  check int_t "index misses deleted" 0
    (List.length (Rel_table.lookup_eq t "id" (Value.Int 2)));
  ignore
    (Rel_table.update_where t
       (fun tup -> Tuple.get_exn tup "id" = Value.Int 3)
       (fun tup -> Tuple.set tup "id" (Value.Int 30)));
  check int_t "index follows update" 1
    (List.length (Rel_table.lookup_eq t "id" (Value.Int 30)))

let test_table_coercion () =
  let t = mk_people () in
  ignore
    (Rel_table.insert t
       (Tuple.make
          [ ("name", Value.String "Dee"); ("id", Value.String "4"); ("age", Value.Int 20) ]));
  let rows = Rel_table.lookup_eq t "id" (Value.Int 4) in
  check int_t "string id coerced to int" 1 (List.length rows)

(* ------------------------------------------------------------------ *)
(* SQL parse / print roundtrip                                         *)
(* ------------------------------------------------------------------ *)

let test_sql_roundtrip () =
  let cases =
    [
      "SELECT * FROM t";
      "SELECT a, b AS bee FROM t WHERE a = 1 AND b < 2.5";
      "SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 3";
      "SELECT t.a, u.b FROM t JOIN u ON t.id = u.id WHERE t.a LIKE 'x%'";
      "SELECT a FROM t LEFT JOIN u ON t.id = u.id";
      "SELECT COUNT(*) AS n, SUM(x) AS s FROM t GROUP BY k HAVING n > 2";
      "SELECT a FROM t WHERE a IN (1, 2, 3) OR b BETWEEN 1 AND 9";
      "SELECT a FROM t WHERE a IS NOT NULL AND b IS NULL";
      "SELECT upper(name) FROM t WHERE NOT (a = 1 OR b = 2)";
      "SELECT a FROM t WHERE d = DATE '2001-04-02'";
    ]
  in
  List.iter
    (fun s ->
      let ast = Sql_parser.parse_exn s in
      let printed = Sql_print.statement_to_string ast in
      let ast2 = Sql_parser.parse_exn printed in
      let printed2 = Sql_print.statement_to_string ast2 in
      check string_t ("roundtrip fixpoint: " ^ s) printed printed2)
    cases

let test_sql_parse_errors () =
  List.iter
    (fun s ->
      match Sql_parser.parse s with
      | Ok _ -> Alcotest.failf "expected parse error for %S" s
      | Error _ -> ())
    [
      "";
      "SELECT";
      "SELECT FROM t";
      "SELECT * FROM";
      "SELECT * FROM t WHERE";
      "SELECT * FROM t GROUP";
      "INSERT INTO t";
      "SELECT SUM(*) FROM t";
      "SELECT * FROM t LIMIT x";
      "CREATE TABLE t (a INT,)";
    ]

let test_sql_precedence () =
  let e = Sql_parser.parse_expr_exn "1 + 2 * 3 = 7 AND NOT a OR b" in
  (* ((1 + (2*3)) = 7 AND (NOT a)) OR b *)
  match e with
  | Sql_ast.Binop (Sql_ast.Or, Sql_ast.Binop (Sql_ast.And, _, Sql_ast.Unop (Sql_ast.Not, _)), _) -> ()
  | _ -> Alcotest.fail "unexpected precedence parse"

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)
(* ------------------------------------------------------------------ *)

let eval_str tup s = Sql_eval.eval tup (Sql_parser.parse_expr_exn s)

let test_eval_three_valued () =
  let tup = Tuple.make [ ("a", Value.Null); ("b", Value.Int 1) ] in
  check value_t "null = 1 is unknown" Value.Null (eval_str tup "a = 1");
  check value_t "unknown AND false is false" (Value.Bool false) (eval_str tup "a = 1 AND b = 2");
  check value_t "unknown OR true is true" (Value.Bool true) (eval_str tup "a = 1 OR b = 1");
  check value_t "not unknown is unknown" Value.Null (eval_str tup "NOT (a = 1)");
  check bool_t "where drops unknown" false
    (Sql_eval.eval_pred tup (Sql_parser.parse_expr_exn "a = 1"))

let test_eval_like () =
  check bool_t "%x%" true (Sql_eval.like_match ~pattern:"%x%" "axb");
  check bool_t "prefix" true (Sql_eval.like_match ~pattern:"ab%" "abc");
  check bool_t "underscore" true (Sql_eval.like_match ~pattern:"a_c" "abc");
  check bool_t "no match" false (Sql_eval.like_match ~pattern:"a_c" "abbc");
  check bool_t "empty pattern" false (Sql_eval.like_match ~pattern:"" "x");
  check bool_t "only percent" true (Sql_eval.like_match ~pattern:"%" "anything");
  check bool_t "anchored" false (Sql_eval.like_match ~pattern:"x%" "ax")

let test_eval_functions () =
  let tup = Tuple.make [ ("s", Value.String " Ab ") ] in
  check value_t "upper" (Value.String " AB ") (eval_str tup "upper(s)");
  check value_t "trim" (Value.String "Ab") (eval_str tup "trim(s)");
  check value_t "length" (Value.Int 4) (eval_str tup "length(s)");
  check value_t "coalesce" (Value.Int 3) (eval_str tup "coalesce(NULL, 3, 4)");
  check value_t "substr" (Value.String "bc") (eval_str tup "substr('abcd', 2, 2)");
  check value_t "concat" (Value.String "a-b") (eval_str tup "concat('a', '-', 'b')")

let test_eval_resolution () =
  let tup = Tuple.make [ ("t.a", Value.Int 1); ("u.a", Value.Int 2); ("u.b", Value.Int 3) ] in
  check value_t "qualified" (Value.Int 2) (eval_str tup "u.a");
  check value_t "unique suffix" (Value.Int 3) (eval_str tup "b");
  (try
     ignore (eval_str tup "a");
     Alcotest.fail "expected ambiguity error"
   with Sql_eval.Eval_error _ -> ())

(* ------------------------------------------------------------------ *)
(* End-to-end SQL on a database                                        *)
(* ------------------------------------------------------------------ *)

let mk_db () =
  let db = Rel_db.create ~name:"test" () in
  let stmts =
    [
      "CREATE TABLE dept (id INT PRIMARY KEY, dname TEXT NOT NULL)";
      "CREATE TABLE emp (id INT PRIMARY KEY, name TEXT NOT NULL, dept_id INT, salary FLOAT)";
      "INSERT INTO dept VALUES (1, 'eng'), (2, 'sales'), (3, 'empty')";
      "INSERT INTO emp VALUES (1, 'Ann', 1, 100.0), (2, 'Bob', 1, 80.0), \
       (3, 'Cid', 2, 90.0), (4, 'Dee', NULL, 70.0)";
    ]
  in
  List.iter (fun s -> ignore (Rel_db.exec db s)) stmts;
  db

let q db s = Rel_db.query db s

let test_db_select_where () =
  let db = mk_db () in
  check int_t "filter" 2 (List.length (q db "SELECT * FROM emp WHERE salary >= 90"));
  check int_t "like" 1 (List.length (q db "SELECT * FROM emp WHERE name LIKE 'A%'"))

let test_db_projection_names () =
  let db = mk_db () in
  let names, rows = Rel_db.query_names db "SELECT name AS who, salary FROM emp WHERE id = 1" in
  check (Alcotest.list string_t) "names" [ "who"; "salary" ] names;
  check (Alcotest.option value_t) "value" (Some (Value.String "Ann"))
    (Tuple.get (List.hd rows) "who")

let test_db_join () =
  let db = mk_db () in
  let rows =
    q db "SELECT e.name, d.dname FROM emp e JOIN dept d ON e.dept_id = d.id ORDER BY e.name"
  in
  check int_t "three joined (Dee has NULL dept)" 3 (List.length rows);
  check (Alcotest.option value_t) "first by name" (Some (Value.String "Ann"))
    (Tuple.get (List.hd rows) "name")

let test_db_left_join () =
  let db = mk_db () in
  let rows =
    q db
      "SELECT e.name, d.dname FROM emp e LEFT JOIN dept d ON e.dept_id = d.id ORDER BY e.name"
  in
  check int_t "all four kept" 4 (List.length rows);
  let dee = List.find (fun r -> Tuple.get r "name" = Some (Value.String "Dee")) rows in
  check (Alcotest.option value_t) "padded null" (Some Value.Null) (Tuple.get dee "dname")

let test_db_group_by () =
  let db = mk_db () in
  let rows =
    q db
      "SELECT dept_id, COUNT(*) AS n, AVG(salary) AS avg_sal FROM emp \
       WHERE dept_id IS NOT NULL GROUP BY dept_id ORDER BY dept_id"
  in
  check int_t "two groups" 2 (List.length rows);
  check (Alcotest.option value_t) "count of dept 1" (Some (Value.Int 2))
    (Tuple.get (List.hd rows) "n");
  check (Alcotest.option value_t) "avg of dept 1" (Some (Value.Float 90.0))
    (Tuple.get (List.hd rows) "avg_sal")

let test_db_having () =
  let db = mk_db () in
  let rows =
    q db "SELECT dept_id, COUNT(*) AS n FROM emp GROUP BY dept_id HAVING n >= 2"
  in
  check int_t "only dept 1" 1 (List.length rows)

let test_db_agg_without_group () =
  let db = mk_db () in
  let rows = q db "SELECT COUNT(*) AS n, MAX(salary) AS m FROM emp" in
  check int_t "single row" 1 (List.length rows);
  check (Alcotest.option value_t) "count" (Some (Value.Int 4)) (Tuple.get (List.hd rows) "n");
  check (Alcotest.option value_t) "max" (Some (Value.Float 100.0)) (Tuple.get (List.hd rows) "m")

let test_db_order_limit_distinct () =
  let db = mk_db () in
  let rows = q db "SELECT salary FROM emp ORDER BY salary DESC LIMIT 2" in
  check (Alcotest.list value_t) "top 2"
    [ Value.Float 100.0; Value.Float 90.0 ]
    (List.map (fun r -> Tuple.get_exn r "salary") rows);
  let rows = q db "SELECT DISTINCT dept_id FROM emp WHERE dept_id IS NOT NULL" in
  check int_t "distinct" 2 (List.length rows)

let test_db_update_delete () =
  let db = mk_db () in
  (match Rel_db.exec db "UPDATE emp SET salary = salary + 10 WHERE dept_id = 1" with
  | Rel_db.Affected n -> check int_t "two raises" 2 n
  | _ -> Alcotest.fail "expected Affected");
  let rows = q db "SELECT salary FROM emp WHERE name = 'Ann'" in
  check (Alcotest.option value_t) "raised" (Some (Value.Float 110.0))
    (Tuple.get (List.hd rows) "salary");
  (match Rel_db.exec db "DELETE FROM emp WHERE salary < 80" with
  | Rel_db.Affected n -> check int_t "one deleted" 1 n
  | _ -> Alcotest.fail "expected Affected");
  check int_t "three remain" 3 (List.length (q db "SELECT * FROM emp"))

let test_db_insert_column_list () =
  let db = mk_db () in
  ignore (Rel_db.exec db "INSERT INTO emp (id, name) VALUES (9, 'Zed')");
  let rows = q db "SELECT * FROM emp WHERE id = 9" in
  check (Alcotest.option value_t) "defaults null" (Some Value.Null)
    (Tuple.get (List.hd rows) "salary")

let test_db_index_used_in_plan () =
  let db = mk_db () in
  ignore (Rel_db.exec db "CREATE INDEX ON emp (salary) USING BTREE");
  let plan = Rel_db.explain db "SELECT * FROM emp WHERE salary > 85" in
  check bool_t "range index used" true
    (contains plan "index-range");
  let plan2 = Rel_db.explain db "SELECT * FROM emp WHERE id = 2" in
  check bool_t "pk index used" true (contains plan2 "index-eq")

let test_db_index_vs_scan_same_rows () =
  let db = mk_db () in
  let before = q db "SELECT name FROM emp WHERE salary > 75 ORDER BY name" in
  ignore (Rel_db.exec db "CREATE INDEX ON emp (salary) USING BTREE");
  let after = q db "SELECT name FROM emp WHERE salary > 75 ORDER BY name" in
  check int_t "same cardinality" (List.length before) (List.length after);
  List.iter2
    (fun a b -> check bool_t "same rows" true (Tuple.equal a b))
    before after

let test_db_errors () =
  let db = mk_db () in
  let expect_err s =
    try
      ignore (Rel_db.exec db s);
      Alcotest.failf "expected Sql_error for %S" s
    with Rel_db.Sql_error _ -> ()
  in
  expect_err "SELECT * FROM missing";
  expect_err "SELECT nosuch FROM emp";
  expect_err "INSERT INTO dept VALUES (1, 'dup')";
  expect_err "CREATE TABLE dept (id INT)";
  expect_err "DROP TABLE missing";
  expect_err "SELECT * FROM emp WHERE";
  expect_err "INSERT INTO emp (id) VALUES (1, 2)"

let test_db_cross_product () =
  let db = mk_db () in
  let rows = q db "SELECT e.id, d.id FROM emp e, dept d" in
  check int_t "4 x 3" 12 (List.length rows)

let test_db_three_way_join () =
  let db = mk_db () in
  ignore (Rel_db.exec db "CREATE TABLE loc (dept_id INT, city TEXT)");
  ignore (Rel_db.exec db "INSERT INTO loc VALUES (1, 'SEA'), (2, 'NYC')");
  let rows =
    q db
      "SELECT e.name, d.dname, l.city FROM emp e \
       JOIN dept d ON e.dept_id = d.id JOIN loc l ON l.dept_id = d.id \
       WHERE l.city = 'SEA' ORDER BY e.name"
  in
  check int_t "two in SEA" 2 (List.length rows)

let test_db_null_semantics () =
  let db = mk_db () in
  (* NULL never equals anything, and IN with NULL follows SQL rules. *)
  check int_t "dept_id = NULL matches nothing" 0
    (List.length (q db "SELECT * FROM emp WHERE dept_id = NULL"));
  check int_t "IS NULL finds Dee" 1
    (List.length (q db "SELECT * FROM emp WHERE dept_id IS NULL"));
  check int_t "NOT of unknown drops row" 3
    (List.length (q db "SELECT * FROM emp WHERE NOT (dept_id = 99)"));
  check int_t "IN list with match" 2
    (List.length (q db "SELECT * FROM emp WHERE dept_id IN (1, 7)"));
  check int_t "BETWEEN over null is unknown" 3
    (List.length (q db "SELECT * FROM emp WHERE dept_id BETWEEN 0 AND 9"))

let test_db_having_on_aggregate_expression () =
  let db = mk_db () in
  let rows =
    q db
      "SELECT dept_id, SUM(salary) AS total FROM emp WHERE dept_id IS NOT NULL        GROUP BY dept_id HAVING total > 100 ORDER BY total DESC"
  in
  check int_t "one heavy dept" 1 (List.length rows);
  check (Alcotest.option value_t) "dept 1 total" (Some (Value.Float 180.0))
    (Tuple.get (List.hd rows) "total")

let test_db_order_by_expression () =
  let db = mk_db () in
  let rows = q db "SELECT name, salary FROM emp ORDER BY salary * -1 LIMIT 1" in
  check (Alcotest.option value_t) "highest salary first under negation"
    (Some (Value.String "Ann"))
    (Tuple.get (List.hd rows) "name")

let test_db_update_with_expression_referencing_row () =
  let db = mk_db () in
  ignore (Rel_db.exec db "UPDATE emp SET salary = salary * 2 WHERE name LIKE '%e%'");
  let rows = q db "SELECT salary FROM emp WHERE name = 'Dee'" in
  check (Alcotest.option value_t) "doubled" (Some (Value.Float 140.0))
    (Tuple.get (List.hd rows) "salary")

let test_db_distinct_on_expressions () =
  let db = mk_db () in
  let rows = q db "SELECT DISTINCT dept_id IS NULL AS has_no_dept FROM emp" in
  check int_t "two truth values" 2 (List.length rows)

let test_btree_string_keys () =
  let bt = Rel_btree.create ~order:4 ~cmp:String.compare () in
  List.iter (fun k -> Rel_btree.insert bt k (String.length k))
    [ "pear"; "apple"; "fig"; "banana"; "kiwi"; "date" ];
  check (Alcotest.list string_t) "lexicographic range"
    [ "banana"; "date"; "fig" ]
    (List.map fst (Rel_btree.range bt ~lo:("b", true) ~hi:("g", false) ()));
  check bool_t "invariants" true (Rel_btree.check_invariants bt)

(* Property: planner output equals naive reference execution. *)
let prop_plan_equals_reference =
  QCheck2.Test.make ~name:"planned join equals nested-loop reference" ~count:60
    QCheck2.Gen.(pair (int_bound 30) (int_bound 30))
    (fun (n, m) ->
      let db = Rel_db.create () in
      ignore (Rel_db.exec db "CREATE TABLE a (k INT, v INT)");
      ignore (Rel_db.exec db "CREATE TABLE b (k INT, w INT)");
      let g = Prng.create (n + (m * 31) + 7) in
      for _ = 1 to n do
        ignore
          (Rel_db.exec db
             (Printf.sprintf "INSERT INTO a VALUES (%d, %d)" (Prng.int g 10) (Prng.int g 100)))
      done;
      for _ = 1 to m do
        ignore
          (Rel_db.exec db
             (Printf.sprintf "INSERT INTO b VALUES (%d, %d)" (Prng.int g 10) (Prng.int g 100)))
      done;
      let joined =
        Rel_db.query db "SELECT a.v, b.w FROM a JOIN b ON a.k = b.k ORDER BY a.v, b.w"
      in
      (* Reference: manual nested loop over raw tables. *)
      let ta = Rel_db.table_exn db "a" and tb = Rel_db.table_exn db "b" in
      let reference = ref [] in
      Rel_table.scan ta (fun _ ra ->
          Rel_table.scan tb (fun _ rb ->
              if Value.equal (Tuple.get_exn ra "k") (Tuple.get_exn rb "k") then
                reference :=
                  Tuple.make
                    [ ("v", Tuple.get_exn ra "v"); ("w", Tuple.get_exn rb "w") ]
                  :: !reference));
      let sort rows = List.sort Tuple.compare rows in
      sort joined = sort !reference)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest [ prop_btree_matches_model; prop_plan_equals_reference ]
  in
  Alcotest.run "relation"
    [
      ( "btree",
        [
          Alcotest.test_case "insert/find" `Quick test_btree_insert_find;
          Alcotest.test_case "range scans" `Quick test_btree_range;
          Alcotest.test_case "remove" `Quick test_btree_remove;
          Alcotest.test_case "height" `Quick test_btree_height_logarithmic;
        ] );
      ( "table",
        [
          Alcotest.test_case "insert/scan" `Quick test_table_insert_scan;
          Alcotest.test_case "pk violation" `Quick test_table_pk_violation;
          Alcotest.test_case "delete/update" `Quick test_table_delete_update;
          Alcotest.test_case "index lookups" `Quick test_table_index_lookup;
          Alcotest.test_case "index maintenance" `Quick test_table_index_maintained_on_mutation;
          Alcotest.test_case "coercion on insert" `Quick test_table_coercion;
        ] );
      ( "sql-syntax",
        [
          Alcotest.test_case "print/parse roundtrip" `Quick test_sql_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_sql_parse_errors;
          Alcotest.test_case "precedence" `Quick test_sql_precedence;
        ] );
      ( "sql-eval",
        [
          Alcotest.test_case "three-valued logic" `Quick test_eval_three_valued;
          Alcotest.test_case "like" `Quick test_eval_like;
          Alcotest.test_case "functions" `Quick test_eval_functions;
          Alcotest.test_case "column resolution" `Quick test_eval_resolution;
        ] );
      ( "sql-exec",
        [
          Alcotest.test_case "select/where" `Quick test_db_select_where;
          Alcotest.test_case "projection names" `Quick test_db_projection_names;
          Alcotest.test_case "inner join" `Quick test_db_join;
          Alcotest.test_case "left join" `Quick test_db_left_join;
          Alcotest.test_case "group by" `Quick test_db_group_by;
          Alcotest.test_case "having" `Quick test_db_having;
          Alcotest.test_case "global aggregates" `Quick test_db_agg_without_group;
          Alcotest.test_case "order/limit/distinct" `Quick test_db_order_limit_distinct;
          Alcotest.test_case "update/delete" `Quick test_db_update_delete;
          Alcotest.test_case "insert column list" `Quick test_db_insert_column_list;
          Alcotest.test_case "plan uses indexes" `Quick test_db_index_used_in_plan;
          Alcotest.test_case "index answers match scan" `Quick test_db_index_vs_scan_same_rows;
          Alcotest.test_case "error reporting" `Quick test_db_errors;
          Alcotest.test_case "cross product" `Quick test_db_cross_product;
          Alcotest.test_case "three-way join" `Quick test_db_three_way_join;
          Alcotest.test_case "null semantics" `Quick test_db_null_semantics;
          Alcotest.test_case "having on aggregate" `Quick test_db_having_on_aggregate_expression;
          Alcotest.test_case "order by expression" `Quick test_db_order_by_expression;
          Alcotest.test_case "update expression" `Quick test_db_update_with_expression_referencing_row;
          Alcotest.test_case "distinct expressions" `Quick test_db_distinct_on_expressions;
          Alcotest.test_case "btree string keys" `Quick test_btree_string_keys;
        ]
        @ props );
    ]
