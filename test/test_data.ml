(* Tests for the Nimble data model: values, tuples, trees, schemas, CSV
   and the deterministic PRNG. *)

let check = Alcotest.check
let string_t = Alcotest.string
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let value_t =
  Alcotest.testable (fun ppf v -> Value.pp ppf v) Value.equal

(* ------------------------------------------------------------------ *)
(* Value                                                               *)
(* ------------------------------------------------------------------ *)

let test_value_guess () =
  check value_t "int" (Value.Int 42) (Value.of_string_guess "42");
  check value_t "float" (Value.Float 3.5) (Value.of_string_guess "3.5");
  check value_t "bool" (Value.Bool true) (Value.of_string_guess "true");
  check value_t "date" (Value.date 2001 4 2) (Value.of_string_guess "2001-04-02");
  check value_t "string" (Value.String "hello") (Value.of_string_guess "hello");
  check value_t "null" Value.Null (Value.of_string_guess "")

let test_value_parse_as () =
  check (Alcotest.option value_t) "as int" (Some (Value.Int 7)) (Value.parse_as Value.TInt "7");
  check (Alcotest.option value_t) "not int" None (Value.parse_as Value.TInt "x");
  check (Alcotest.option value_t) "as bool t" (Some (Value.Bool true)) (Value.parse_as Value.TBool "T");
  check (Alcotest.option value_t) "bad date" None (Value.parse_as Value.TDate "2001-02-30")

let test_value_compare_numeric () =
  check bool_t "int vs float" true (Value.compare (Value.Int 2) (Value.Float 2.5) < 0);
  check bool_t "equal across kinds" true (Value.equal (Value.Int 2) (Value.Float 2.0));
  check bool_t "null smallest" true (Value.compare Value.Null (Value.Bool false) < 0)

let test_value_sql_compare () =
  check (Alcotest.option int_t) "null unknown" None
    (Value.compare_sql Value.Null (Value.Int 1));
  check (Alcotest.option int_t) "ordinary" (Some 0)
    (Value.compare_sql (Value.Int 1) (Value.Int 1))

let test_value_arith () =
  check value_t "add ints" (Value.Int 5) (Value.add (Value.Int 2) (Value.Int 3));
  check value_t "add mixed" (Value.Float 5.5) (Value.add (Value.Int 2) (Value.Float 3.5));
  check value_t "concat" (Value.String "ab") (Value.add (Value.String "a") (Value.String "b"));
  check value_t "null propagates" Value.Null (Value.add Value.Null (Value.Int 3));
  check value_t "div by zero is null" Value.Null (Value.div (Value.Int 3) (Value.Int 0))

let test_value_date_days () =
  check int_t "epoch" 0 (Value.date_to_days { Value.year = 1970; month = 1; day = 1 });
  check int_t "next day" 1 (Value.date_to_days { Value.year = 1970; month = 1; day = 2 });
  check int_t "y2k" 10957 (Value.date_to_days { Value.year = 2000; month = 1; day = 1 })

let test_value_date_validation () =
  (try
     ignore (Value.date 2001 2 29);
     Alcotest.fail "expected invalid date"
   with Invalid_argument _ -> ());
  ignore (Value.date 2000 2 29) (* leap year ok *)

let test_value_cast () =
  check (Alcotest.option value_t) "string->int" (Some (Value.Int 12))
    (Value.cast Value.TInt (Value.String "12"));
  check (Alcotest.option value_t) "int->string" (Some (Value.String "12"))
    (Value.cast Value.TString (Value.Int 12));
  check (Alcotest.option value_t) "string->date" (Some (Value.date 1999 12 31))
    (Value.cast Value.TDate (Value.String "1999-12-31"));
  check (Alcotest.option value_t) "int->date fails" None (Value.cast Value.TDate (Value.Int 3))

let test_value_hash_consistent () =
  check bool_t "equal values hash alike" true
    (Value.hash (Value.Int 3) = Value.hash (Value.Float 3.0))

(* ------------------------------------------------------------------ *)
(* Tuple                                                               *)
(* ------------------------------------------------------------------ *)

let t1 () = Tuple.make [ ("a", Value.Int 1); ("b", Value.String "x") ]

let test_tuple_basic () =
  let t = t1 () in
  check int_t "arity" 2 (Tuple.arity t);
  check (Alcotest.option value_t) "get a" (Some (Value.Int 1)) (Tuple.get t "a");
  check (Alcotest.option value_t) "get missing" None (Tuple.get t "z");
  check (Alcotest.list string_t) "names in order" [ "a"; "b" ] (Tuple.field_names t)

let test_tuple_duplicate_rejected () =
  try
    ignore (Tuple.make [ ("a", Value.Int 1); ("a", Value.Int 2) ]);
    Alcotest.fail "expected duplicate rejection"
  with Invalid_argument _ -> ()

let test_tuple_set_remove () =
  let t = Tuple.set (t1 ()) "a" (Value.Int 9) in
  check (Alcotest.option value_t) "updated" (Some (Value.Int 9)) (Tuple.get t "a");
  let t = Tuple.set t "c" (Value.Bool true) in
  check int_t "appended" 3 (Tuple.arity t);
  let t = Tuple.remove t "b" in
  check bool_t "removed" false (Tuple.mem t "b")

let test_tuple_project_pads_null () =
  let p = Tuple.project (t1 ()) [ "b"; "zz" ] in
  check (Alcotest.list string_t) "projection order" [ "b"; "zz" ] (Tuple.field_names p);
  check (Alcotest.option value_t) "missing is null" (Some Value.Null) (Tuple.get p "zz")

let test_tuple_concat_left_wins () =
  let l = Tuple.make [ ("a", Value.Int 1) ] in
  let r = Tuple.make [ ("a", Value.Int 2); ("b", Value.Int 3) ] in
  let c = Tuple.concat l r in
  check (Alcotest.option value_t) "left wins" (Some (Value.Int 1)) (Tuple.get c "a");
  check int_t "merged arity" 2 (Tuple.arity c)

let test_tuple_rename_prefix () =
  let t = Tuple.rename (t1 ()) [ ("a", "alpha") ] in
  check bool_t "renamed" true (Tuple.mem t "alpha");
  let t = Tuple.prefix "p" (t1 ()) in
  check bool_t "prefixed" true (Tuple.mem t "p.a")

(* ------------------------------------------------------------------ *)
(* Dtree                                                               *)
(* ------------------------------------------------------------------ *)

let test_dtree_xml_roundtrip () =
  let e = Xml_parser.parse_element_exn {|<o id="7"><n>Alice</n><amt>12.5</amt></o>|} in
  let d = Dtree.of_xml_element e in
  check (Alcotest.option value_t) "typed attr" (Some (Value.Int 7)) (Dtree.attr d "id");
  (match Dtree.first_named d "amt" with
  | Some amt -> check (Alcotest.option value_t) "typed leaf" (Some (Value.Float 12.5)) (Dtree.atom_value amt)
  | None -> Alcotest.fail "expected amt");
  let e' = Dtree.to_xml_element d in
  check string_t "tag preserved" "o" e'.Xml_types.tag

let test_dtree_tuple_roundtrip () =
  let tup = Tuple.make [ ("id", Value.Int 1); ("name", Value.String "Bob") ] in
  let d = Dtree.of_tuple "row" tup in
  check (Alcotest.option string_t) "label" (Some "row") (Dtree.label d);
  let tup' = Dtree.to_tuple d in
  check bool_t "tuple roundtrip" true (Tuple.equal tup tup')

let test_dtree_text () =
  let d = Dtree.node "r" [ Dtree.leaf "x" (Value.Int 1); Dtree.leaf "y" (Value.String "a") ] in
  check string_t "text" "1a" (Dtree.text d);
  check int_t "size" 5 (Dtree.size d)

let test_dtree_compare_total () =
  let a = Dtree.leaf "x" (Value.Int 1) in
  let b = Dtree.leaf "x" (Value.Int 2) in
  check bool_t "ordered" true (Dtree.compare a b < 0);
  check bool_t "equal" true (Dtree.equal a a)

(* ------------------------------------------------------------------ *)
(* Dschema                                                             *)
(* ------------------------------------------------------------------ *)

let test_schema_infer () =
  let rows =
    [
      Tuple.make [ ("id", Value.Int 1); ("price", Value.Int 10) ];
      Tuple.make [ ("id", Value.Int 2); ("price", Value.Float 9.5) ];
      Tuple.make [ ("id", Value.Int 3); ("price", Value.Null) ];
    ]
  in
  let s = Dschema.infer_relational "t" rows in
  let price = Option.get (Dschema.find_column s "price") in
  check string_t "widened to float" "float" (Value.ty_to_string price.Dschema.col_ty);
  check bool_t "nullable" true price.Dschema.nullable;
  let id = Option.get (Dschema.find_column s "id") in
  check bool_t "id not nullable" false id.Dschema.nullable

let test_schema_conforms_coerce () =
  let s =
    Dschema.relational "t"
      [ Dschema.column "id" Value.TInt; Dschema.column ~nullable:true "name" Value.TString ]
  in
  check bool_t "conforms" true
    (Dschema.conforms s (Tuple.make [ ("id", Value.Int 1); ("name", Value.Null) ]));
  check bool_t "wrong type" false
    (Dschema.conforms s (Tuple.make [ ("id", Value.String "x"); ("name", Value.Null) ]));
  (match Dschema.coerce_tuple s (Tuple.make [ ("name", Value.String "n"); ("id", Value.String "5") ]) with
  | Some t ->
    check (Alcotest.option value_t) "cast applied" (Some (Value.Int 5)) (Tuple.get t "id");
    check (Alcotest.list string_t) "reordered" [ "id"; "name" ] (Tuple.field_names t)
  | None -> Alcotest.fail "expected coercion");
  check bool_t "missing non-nullable" true
    (Dschema.coerce_tuple s (Tuple.make [ ("name", Value.String "n") ]) = None)

let test_tree_schema () =
  let d =
    Dtree.node "order"
      ~attrs:[ ("id", Value.Int 1) ]
      [ Dtree.leaf "item" (Value.String "x"); Dtree.leaf "item" (Value.String "y") ]
  in
  let schema = Dschema.infer_tree d in
  check bool_t "conforms to own schema" true (Dschema.tree_conforms schema d);
  let other = Dtree.node "order" [ Dtree.node "unknown" [] ] in
  check bool_t "unknown child rejected" false (Dschema.tree_conforms schema other)

(* ------------------------------------------------------------------ *)
(* CSV                                                                 *)
(* ------------------------------------------------------------------ *)

let test_csv_basic () =
  let rows = Csv.parse "a,b,c\n1,2,3\n" in
  check int_t "two rows" 2 (List.length rows);
  check (Alcotest.list string_t) "first row" [ "a"; "b"; "c" ] (List.hd rows)

let test_csv_quotes () =
  let rows = Csv.parse "\"x,y\",\"he said \"\"hi\"\"\",\"multi\nline\"\n" in
  check (Alcotest.list string_t) "decoded"
    [ "x,y"; {|he said "hi"|}; "multi\nline" ]
    (List.hd rows)

let test_csv_roundtrip () =
  let rows = [ [ "a"; "b,c"; "d\"e" ]; [ "1"; ""; "x\ny" ] ] in
  let printed = Csv.print rows in
  check bool_t "roundtrip" true (Csv.parse printed = rows)

let test_csv_tuples () =
  let tuples = Csv.to_tuples ~header:true "id,name\n1,Ann\n2,Bob\n" in
  check int_t "two tuples" 2 (List.length tuples);
  check (Alcotest.option value_t) "typed id" (Some (Value.Int 1)) (Tuple.get (List.hd tuples) "id")

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  let seq g = List.init 20 (fun _ -> Prng.int g 1000) in
  check (Alcotest.list int_t) "same seed, same stream" (seq a) (seq b)

let test_prng_bounds () =
  let g = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int g 10 in
    if v < 0 || v >= 10 then Alcotest.fail "out of bounds"
  done;
  for _ = 1 to 1000 do
    let v = Prng.int_in g 5 8 in
    if v < 5 || v > 8 then Alcotest.fail "int_in out of bounds"
  done

let test_prng_zipf_skew () =
  let g = Prng.create 11 in
  let n = 100 in
  let counts = Array.make n 0 in
  for _ = 1 to 10_000 do
    let r = Prng.zipf g ~n ~theta:1.0 in
    counts.(r) <- counts.(r) + 1
  done;
  check bool_t "rank 0 dominates rank 50" true (counts.(0) > 10 * max 1 counts.(50))

let test_prng_bernoulli () =
  let g = Prng.create 3 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Prng.bernoulli g 0.25 then incr hits
  done;
  let rate = float_of_int !hits /. 10_000.0 in
  check bool_t "close to 0.25" true (rate > 0.22 && rate < 0.28)

let test_prng_shuffle_permutation () =
  let g = Prng.create 5 in
  let arr = Array.init 50 (fun i -> i) in
  Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check bool_t "is a permutation" true (Array.to_list sorted = List.init 50 (fun i -> i))

let prop_tuple_project_subset =
  QCheck2.Test.make ~name:"project keeps requested names" ~count:200
    QCheck2.Gen.(
      pair
        (small_list (pair (oneofl [ "a"; "b"; "c"; "d" ]) small_int))
        (small_list (oneofl [ "a"; "b"; "c"; "z" ])))
    (fun (fields, names) ->
      (* dedupe *)
      let seen = Hashtbl.create 4 in
      let fields =
        List.filter
          (fun (n, _) ->
            if Hashtbl.mem seen n then false
            else begin
              Hashtbl.add seen n ();
              true
            end)
          fields
      in
      let t = Tuple.make (List.map (fun (n, i) -> (n, Value.Int i)) fields) in
      let p = Tuple.project t names in
      Tuple.field_names p = names)

let prop_value_compare_total_order =
  let gen_value =
    QCheck2.Gen.(
      oneof
        [
          return Value.Null;
          map (fun b -> Value.Bool b) bool;
          map (fun i -> Value.Int i) small_signed_int;
          map (fun f -> Value.Float f) (float_bound_inclusive 100.0);
          map (fun s -> Value.String s) (small_string ~gen:printable);
        ])
  in
  QCheck2.Test.make ~name:"value compare is antisymmetric and transitive-ish" ~count:300
    QCheck2.Gen.(triple gen_value gen_value gen_value)
    (fun (a, b, c) ->
      let ab = Value.compare a b and ba = Value.compare b a in
      let anti = (ab = 0 && ba = 0) || (ab < 0 && ba > 0) || (ab > 0 && ba < 0) in
      let trans =
        not (Value.compare a b <= 0 && Value.compare b c <= 0) || Value.compare a c <= 0
      in
      anti && trans)

let test_csv_edge_cases () =
  check int_t "empty input" 0 (List.length (Csv.parse ""));
  check (Alcotest.list (Alcotest.list string_t)) "trailing separator keeps empty cell"
    [ [ "a"; "" ] ] (Csv.parse "a,\n");
  check (Alcotest.list (Alcotest.list string_t)) "lone newline row dropped"
    [ [ "x" ] ] (Csv.parse "x\n");
  let names, rows = Csv.parse_rows ~header:false "1,2\n3,4,5\n" in
  check (Alcotest.list string_t) "generated names by widest row" [ "c1"; "c2"; "c3" ] names;
  check int_t "rows kept" 2 (List.length rows)

let test_value_float_rendering () =
  check string_t "integral float keeps .0" "55.0" (Value.to_string (Value.Float 55.0));
  check string_t "fractional float" "2.5" (Value.to_string (Value.Float 2.5));
  check string_t "negative int" "-3" (Value.to_string (Value.Int (-3)))

let test_dschema_relational_duplicate_rejected () =
  try
    ignore
      (Dschema.relational "t" [ Dschema.column "a" Value.TInt; Dschema.column "a" Value.TInt ]);
    Alcotest.fail "expected duplicate rejection"
  with Invalid_argument _ -> ()

let test_prng_split_independence () =
  let a = Prng.create 9 in
  let b = Prng.split a in
  let xs = List.init 10 (fun _ -> Prng.int a 1000) in
  let ys = List.init 10 (fun _ -> Prng.int b 1000) in
  check bool_t "streams differ" true (xs <> ys)

let () =
  let q = List.map QCheck_alcotest.to_alcotest [ prop_tuple_project_subset; prop_value_compare_total_order ] in
  Alcotest.run "data"
    [
      ( "value",
        [
          Alcotest.test_case "type guessing" `Quick test_value_guess;
          Alcotest.test_case "parse_as" `Quick test_value_parse_as;
          Alcotest.test_case "numeric comparison" `Quick test_value_compare_numeric;
          Alcotest.test_case "sql comparison" `Quick test_value_sql_compare;
          Alcotest.test_case "arithmetic" `Quick test_value_arith;
          Alcotest.test_case "date arithmetic" `Quick test_value_date_days;
          Alcotest.test_case "date validation" `Quick test_value_date_validation;
          Alcotest.test_case "casts" `Quick test_value_cast;
          Alcotest.test_case "hash consistency" `Quick test_value_hash_consistent;
          Alcotest.test_case "float rendering" `Quick test_value_float_rendering;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "basics" `Quick test_tuple_basic;
          Alcotest.test_case "duplicates rejected" `Quick test_tuple_duplicate_rejected;
          Alcotest.test_case "set/remove" `Quick test_tuple_set_remove;
          Alcotest.test_case "project pads null" `Quick test_tuple_project_pads_null;
          Alcotest.test_case "concat left wins" `Quick test_tuple_concat_left_wins;
          Alcotest.test_case "rename/prefix" `Quick test_tuple_rename_prefix;
        ]
        @ q );
      ( "dtree",
        [
          Alcotest.test_case "xml roundtrip" `Quick test_dtree_xml_roundtrip;
          Alcotest.test_case "tuple roundtrip" `Quick test_dtree_tuple_roundtrip;
          Alcotest.test_case "text and size" `Quick test_dtree_text;
          Alcotest.test_case "total order" `Quick test_dtree_compare_total;
        ] );
      ( "schema",
        [
          Alcotest.test_case "inference" `Quick test_schema_infer;
          Alcotest.test_case "conformance and coercion" `Quick test_schema_conforms_coerce;
          Alcotest.test_case "tree schema" `Quick test_tree_schema;
          Alcotest.test_case "duplicate columns rejected" `Quick
            test_dschema_relational_duplicate_rejected;
        ] );
      ( "csv",
        [
          Alcotest.test_case "basic" `Quick test_csv_basic;
          Alcotest.test_case "quoting" `Quick test_csv_quotes;
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "typed tuples" `Quick test_csv_tuples;
          Alcotest.test_case "edge cases" `Quick test_csv_edge_cases;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "zipf skew" `Quick test_prng_zipf_skew;
          Alcotest.test_case "bernoulli rate" `Quick test_prng_bernoulli;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "split independence" `Quick test_prng_split_independence;
        ] );
    ]
