(* The semantic fragment cache: predicate containment, probe/remainder
   splitting, canonical fragment keys, admission/eviction, two-level
   invalidation — and the headline property that turning the cache on
   never changes an answer, on any execution engine. *)

let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string
let check = Alcotest.check
let q = Xq_parser.parse_exn
let e s = Sql_parser.parse_expr_exn s
let an s = Sem_pred.analyze (Some (e s))
let contains outer inner = Sem_pred.contains ~outer ~inner

(* ------------------------------------------------------------------ *)
(* Sem_pred: containment, overlap, remainder                           *)
(* ------------------------------------------------------------------ *)

let test_pred_tautology () =
  let top = Sem_pred.analyze None in
  check bool_t "no WHERE contains everything" true (contains top (an "id <= 5"));
  check bool_t "a range does not contain the tautology" false
    (contains (an "id <= 5") top);
  check bool_t "tautology contains itself" true (contains top top)

let test_pred_ranges () =
  check bool_t "narrow within wide" true
    (contains (an "id <= 100") (an "id <= 50"));
  check bool_t "wide not within narrow" false
    (contains (an "id <= 50") (an "id <= 100"));
  check bool_t "strict vs inclusive bound" true
    (contains (an "id <= 50") (an "id < 50"));
  check bool_t "inclusive not within strict" false
    (contains (an "id < 50") (an "id <= 50"));
  check bool_t "two-sided within one-sided" true
    (contains (an "id > 10") (an "id > 20 AND id < 30"));
  check bool_t "between within range" true
    (contains (an "id >= 1 AND id <= 100") (an "id BETWEEN 2 AND 99"));
  check bool_t "IN-list within range" true
    (contains (an "id BETWEEN 1 AND 10") (an "id IN (2, 3)"));
  check bool_t "IN-list escaping the range" false
    (contains (an "id BETWEEN 1 AND 10") (an "id IN (2, 30)"));
  check bool_t "equality within range" true
    (contains (an "tier >= 1") (an "tier = 2"))

let test_pred_disjoint () =
  check bool_t "disjoint ranges do not overlap" false
    (Sem_pred.overlaps (an "id < 5") (an "id > 10"));
  check bool_t "touching closed bounds overlap" true
    (Sem_pred.overlaps (an "id <= 5") (an "id >= 5"));
  check bool_t "different columns always may overlap" true
    (Sem_pred.overlaps (an "id < 5") (an "tier > 10"));
  check bool_t "unsat analyzes as unsat" true (an "id = 1 AND id = 2").Sem_pred.unsat;
  check bool_t "unsat inner is contained in anything" true
    (contains (an "id > 1000") (an "id = 1 AND id = 2"))

let test_pred_opaque () =
  check bool_t "opaque conjunct matches itself" true
    (contains (an "name LIKE 'a%'") (an "name LIKE 'a%' AND id < 5"));
  check bool_t "opaque conjunct missing from inner" false
    (contains (an "name LIKE 'a%'") (an "id < 5"));
  check bool_t "opaque never proves disjointness" true
    (Sem_pred.overlaps (an "name LIKE 'a%'") (an "name LIKE 'b%'"))

let test_pred_remainder () =
  (* remainder = q AND (NOT p OR p-columns NULL): evaluating it with
     Sql_eval against concrete rows partitions correctly. *)
  let p = e "id <= 10" and qq = e "id <= 20" in
  match Sem_pred.remainder ~cached:(Some p) (Some qq) with
  | None -> Alcotest.fail "expected a remainder predicate"
  | Some r ->
    let holds expr row = Sql_eval.eval_pred row expr in
    let row v = Tuple.make [ ("id", v) ] in
    check bool_t "inside the extent: excluded" false (holds r (row (Value.Int 5)));
    check bool_t "outside the extent: included" true (holds r (row (Value.Int 15)));
    check bool_t "outside q: excluded" false (holds r (row (Value.Int 25)));
    (* a null id fails q itself, so neither probe nor remainder keeps it *)
    check bool_t "null row excluded (fails q)" false (holds r (row Value.Null));
    (match Sem_pred.probe_filter ~cached:(Some p) (Some qq) with
    | None -> Alcotest.fail "expected a probe filter"
    | Some pf ->
      (* the probe runs over extent rows (all satisfy p): it keeps those
         satisfying q with non-null p-columns *)
      check bool_t "probe keeps matching cached rows" true (holds pf (row (Value.Int 5)));
      check bool_t "probe drops rows outside q" false (holds pf (row (Value.Int 25)));
      check bool_t "probe drops null p-columns" false (holds pf (row Value.Null)))

(* ------------------------------------------------------------------ *)
(* Canonical fragment keys (satellite)                                 *)
(* ------------------------------------------------------------------ *)

let test_canonical_alias_renaming () =
  let a =
    Sql_parser.parse_select_exn
      "SELECT x.id, x.name FROM customers AS x WHERE x.id < 5 AND x.tier = 1"
  in
  let b =
    Sql_parser.parse_select_exn
      "SELECT y.id, y.name FROM customers AS y WHERE y.tier = 1 AND y.id < 5"
  in
  check string_t "alias-renamed + conjunct-reordered renderings agree"
    (Sql_print.canonical_select a) (Sql_print.canonical_select b);
  let c =
    Sql_parser.parse_select_exn
      "SELECT y.id, y.name FROM customers AS y WHERE y.tier = 2 AND y.id < 5"
  in
  check bool_t "different predicates stay distinct" true
    (Sql_print.canonical_select a <> Sql_print.canonical_select c)

let test_canonical_self_join () =
  let s =
    Sql_parser.parse_select_exn
      "SELECT a.id, b.id FROM customers AS a, customers AS b WHERE a.id = b.id"
  in
  let canon = Sql_print.canonical_select s in
  check bool_t "self-join arms get distinct positions" true
    (let t0 = ref false and t1 = ref false in
     String.iteri
       (fun i ch ->
         if ch = 't' && i + 1 < String.length canon then begin
           if canon.[i + 1] = '0' then t0 := true;
           if canon.[i + 1] = '1' then t1 := true
         end)
       canon;
     !t0 && !t1)

(* ------------------------------------------------------------------ *)
(* Sem_entry / Sem_cache mechanics                                     *)
(* ------------------------------------------------------------------ *)

let entry ?(source = "crm") ?(key = "k") ?(where = Some (e "id <= 10")) nrows =
  let rows =
    List.init nrows (fun i ->
        Tuple.make [ ("id", Value.Int i); ("name", Value.String "x") ])
  in
  Sem_entry.make ~source ~scope:"SELECT * FROM customers" ~exports:[ "crm.customers" ]
    ~where
    ~colmap:[ ((None, "id"), "id"); ((None, "name"), "name") ]
    ~columns:[ "id"; "name" ] ~rows ~key

let test_entry_order_detection () =
  let asc = entry 5 in
  check bool_t "ascending id detected" true (asc.Sem_entry.entry_order_col = Some "id");
  let rows =
    [ Tuple.make [ ("id", Value.Int 3) ]; Tuple.make [ ("id", Value.Int 1) ] ]
  in
  check bool_t "descending column rejected" true
    (Sem_entry.detect_order_col [ "id" ] rows = None);
  let dup =
    [ Tuple.make [ ("id", Value.Int 1) ]; Tuple.make [ ("id", Value.Int 1) ] ]
  in
  check bool_t "ties rejected (strictness)" true
    (Sem_entry.detect_order_col [ "id" ] dup = None)

let test_entry_projection_mismatch () =
  let ent = entry 3 in
  check bool_t "covers its own columns" true
    (Sem_entry.covers ent [ (None, "id"); (None, "name") ]);
  check bool_t "does not cover a missing column" false
    (Sem_entry.covers ent [ (None, "balance") ])

let test_cache_disabled_refuses () =
  let c = Sem_cache.create () in
  check bool_t "disabled cache refuses admission" false (Sem_cache.admit c (entry 3));
  check int_t "nothing resident" 0 (Sem_cache.entry_count c)

let test_cache_eviction_order () =
  let small = entry ~key:"a" 2 and hot = entry ~key:"b" 2 in
  let budget = small.Sem_entry.entry_bytes + hot.Sem_entry.entry_bytes in
  let c = Sem_cache.create ~budget_bytes:budget () in
  check bool_t "admit a" true (Sem_cache.admit c small);
  check bool_t "admit b" true (Sem_cache.admit c hot);
  hot.Sem_entry.entry_hits <- 5;
  (* a third entry must displace the cold resident, not the hot one *)
  let third = entry ~key:"c" 2 in
  check bool_t "admit c evicts someone" true (Sem_cache.admit c third);
  let keys =
    List.map
      (fun en -> en.Sem_entry.entry_key)
      (Sem_cache.entries c ~source:"crm" ~scope:"SELECT * FROM customers")
  in
  check bool_t "hot entry survived" true (List.mem "b" keys);
  check bool_t "cold entry evicted" false (List.mem "a" keys);
  (* a newcomer colder than every resident is refused *)
  hot.Sem_entry.entry_hits <- 50;
  third.Sem_entry.entry_hits <- 50;
  check bool_t "cold newcomer refused against hot residents" false
    (Sem_cache.admit c (entry ~key:"d" 2));
  check bool_t "oversized entry refused outright" false
    (Sem_cache.admit (Sem_cache.create ~budget_bytes:8 ()) (entry ~key:"e" 100))

let test_cache_invalidation () =
  let c = Sem_cache.create ~budget_bytes:1_000_000 () in
  ignore (Sem_cache.admit c (entry ~key:"a" 2));
  ignore (Sem_cache.admit c (entry ~key:"b" ~source:"ext" 2));
  check int_t "invalidate by source name" 1 (Sem_cache.invalidate_name c "ext");
  check int_t "invalidate by export prefix" 1 (Sem_cache.invalidate_name c "crm");
  check int_t "cache emptied" 0 (Sem_cache.entry_count c);
  ignore (Sem_cache.admit c (entry ~key:"a" 2));
  Sem_cache.set_budget c 0;
  check bool_t "budget 0 disables and clears" true
    ((not (Sem_cache.enabled c)) && Sem_cache.entry_count c = 0)

(* ------------------------------------------------------------------ *)
(* Mat_select: exhaustive-search cap (satellite)                       *)
(* ------------------------------------------------------------------ *)

let test_select_optimal_cap () =
  let cand i =
    {
      Mat_select.cand_view = Printf.sprintf "v%02d" i;
      storage = 1 + (i mod 3);
      virtual_cost = 10.0 +. float_of_int i;
      local_cost = 1.0;
    }
  in
  let many = List.init (Mat_select.optimal_candidate_cap + 5) cand in
  let workload = List.map (fun c -> (c.Mat_select.cand_view, 3)) many in
  let t0 = Unix.gettimeofday () in
  let capped = Mat_select.select_optimal ~budget:10 many workload in
  check bool_t "over the cap answers fast (greedy fallback)" true
    (Unix.gettimeofday () -. t0 < 5.0);
  let greedy = Mat_select.select ~budget:10 many workload in
  check bool_t "over the cap matches the greedy selection" true
    (capped.Mat_select.chosen = greedy.Mat_select.chosen);
  (* under the cap the exhaustive search still runs (and can beat greedy) *)
  let few = List.init 6 cand in
  let wl = List.map (fun c -> (c.Mat_select.cand_view, 3)) few in
  let opt = Mat_select.select_optimal ~budget:4 few wl in
  let gre = Mat_select.select ~budget:4 few wl in
  check bool_t "small inputs: optimal at least as good" true
    (opt.Mat_select.total_benefit >= gre.Mat_select.total_benefit)

(* ------------------------------------------------------------------ *)
(* End-to-end fixtures                                                 *)
(* ------------------------------------------------------------------ *)

let make_customer_db ~name ~rows =
  let db = Rel_db.create ~name () in
  ignore
    (Rel_db.exec db
       "CREATE TABLE customers (id INT, name TEXT, tier INT, balance FLOAT)");
  ignore (Rel_db.exec db "CREATE TABLE orders (cust_id INT, amount INT)");
  for i = 1 to rows do
    ignore
      (Rel_db.exec db
         (Printf.sprintf "INSERT INTO customers VALUES (%d, 'c%d', %d, %g)" i i
            (1 + (i mod 3))
            (float_of_int (i * 7))))
  done;
  for i = 1 to rows do
    ignore
      (Rel_db.exec db
         (Printf.sprintf "INSERT INTO orders VALUES (%d, %d)" i ((i * 13) mod 500)))
  done;
  db

let render trees = String.concat "\n" (List.map Dtree.to_string trees)

let q_le k =
  q
    (Printf.sprintf
       {|WHERE <row><id>$i</id><name>$n</name><balance>$b</balance></row> IN "crm.customers",
              $i <= %d
         CONSTRUCT <c><i>$i</i><n>$n</n><b>$b</b></c>|}
       k)

let test_sem_full_hit_ships_nothing () =
  let cat = Med_catalog.create ~sem_budget_bytes:(1 lsl 20) () in
  let wrapped, stats =
    Net_sim.wrap ~seed:3 Net_sim.default_profile
      (Rel_source.make (make_customer_db ~name:"crm" ~rows:40))
  in
  Med_catalog.register_source cat wrapped;
  let cold = Med_exec.run cat (q_le 30) in
  let shipped_cold = stats.Net_sim.tuples_shipped in
  let warm = Med_exec.run cat (q_le 20) in
  check int_t "warm contained query ships nothing" shipped_cold
    stats.Net_sim.tuples_shipped;
  check int_t "cold rows" 30 (List.length cold);
  check int_t "warm rows" 20 (List.length warm);
  let st = Sem_cache.stats (Med_catalog.sem_cache cat) in
  check int_t "one full hit" 1 st.Sem_cache.sem_hits;
  check int_t "one miss" 1 st.Sem_cache.sem_misses

let test_sem_partial_ships_remainder () =
  let cat = Med_catalog.create ~sem_budget_bytes:(1 lsl 20) () in
  let wrapped, stats =
    Net_sim.wrap ~seed:3 Net_sim.default_profile
      (Rel_source.make (make_customer_db ~name:"crm" ~rows:40))
  in
  Med_catalog.register_source cat wrapped;
  ignore (Med_exec.run cat (q_le 20));
  let shipped_cold = stats.Net_sim.tuples_shipped in
  let wide = Med_exec.run cat (q_le 30) in
  check int_t "widened query has the full answer" 30 (List.length wide);
  check int_t "only the remainder shipped" (shipped_cold + 10)
    stats.Net_sim.tuples_shipped;
  let st = Sem_cache.stats (Med_catalog.sem_cache cat) in
  check int_t "one partial hit" 1 st.Sem_cache.sem_partials;
  (* 20 rows shipped by the cold miss + only 10 by the remainder *)
  check int_t "shipped rows accounted" 30 st.Sem_cache.sem_rows_shipped;
  check int_t "probe rows answered locally" 20 st.Sem_cache.sem_rows_local

let test_sem_answers_while_source_offline () =
  (* A warm semantic cache keeps answering a contained query after its
     source goes away — same contract as the exact-key fragment cache. *)
  let cat = Med_catalog.create ~sem_budget_bytes:(1 lsl 20) () in
  Med_catalog.register_source cat
    (Rel_source.make (make_customer_db ~name:"crm" ~rows:30));
  ignore (Med_exec.run cat (q_le 25));
  let reg = Med_catalog.registry cat in
  (match Src_registry.find reg "crm" with
  | None -> Alcotest.fail "source vanished"
  | Some src ->
    Src_registry.remove reg "crm";
    Src_registry.register reg
      {
        src with
        Source.is_available = (fun () -> false);
        execute = (fun _ -> raise (Source.Unavailable "crm"));
        documents = (fun _ -> raise (Source.Unavailable "crm"));
      });
  let warm = Med_exec.run cat (q_le 10) in
  check int_t "contained query answered from the extent" 10 (List.length warm);
  (* ...until invalidation drops the extent; then the outage shows. *)
  Med_catalog.notify_invalidation cat "crm";
  check bool_t "after invalidation the outage is visible" true
    (match Med_exec.run cat (q_le 10) with
    | _ -> false
    | exception Source.Unavailable _ -> true
    | exception Alg_exec.Source_unavailable _ -> true)

(* ------------------------------------------------------------------ *)
(* Property: semantic cache on == off, all engines, strict + partial   *)
(* ------------------------------------------------------------------ *)

let modes =
  [
    Alg_batch.Tuple;
    Alg_batch.Batch { chunk = 4 };
    Alg_batch.Parallel { domains = 2; chunk = 3 };
  ]

let prop_sem_cache_transparent =
  QCheck2.Test.make ~name:"semantic cache on = off (all engines)" ~count:25
    QCheck2.Gen.(
      triple (int_range 0 25) (int_range 0 20_000) bool)
    (fun (nrows, budget, ext_up) ->
      (* two federations over identical data; only the sem budget differs *)
      let build ~sem_budget_bytes =
        let cat = Med_catalog.create ~sem_budget_bytes () in
        Med_catalog.register_source cat
          (Rel_source.make (make_customer_db ~name:"crm" ~rows:nrows));
        let ext = Rel_db.create ~name:"ext" () in
        ignore (Rel_db.exec ext "CREATE TABLE people (id INT, name TEXT)");
        for i = 1 to nrows do
          ignore
            (Rel_db.exec ext (Printf.sprintf "INSERT INTO people VALUES (%d, 'p%d')" i i))
        done;
        let wrapped, _ =
          Net_sim.wrap ~seed:11
            {
              Net_sim.default_profile with
              Net_sim.availability = (if ext_up then 1.0 else 0.0);
            }
            (Rel_source.make ext)
        in
        Med_catalog.register_source cat wrapped;
        cat
      in
      let cat_off = build ~sem_budget_bytes:0 in
      let cat_on = build ~sem_budget_bytes:budget in
      let q_range a b =
        q
          (Printf.sprintf
             {|WHERE <row><id>$i</id><name>$n</name><balance>$b</balance></row> IN "crm.customers",
                    $i > %d, $i <= %d
               CONSTRUCT <c><i>$i</i><n>$n</n><b>$b</b></c>|}
             a b)
      in
      let q_join =
        q
          {|WHERE <row><id>$i</id><tier>$t</tier></row> IN "crm.customers",
                 <row><cust_id>$i</cust_id><amount>$a</amount></row> IN "crm.orders",
                 $t >= 2, $a < 400
            CONSTRUCT <j><i>$i</i><a>$a</a></j>|}
      in
      let q_ext =
        q
          {|WHERE <row><id>$i</id><name>$n</name></row> IN "ext.people", $i <= 10
            CONSTRUCT <p><n>$n</n></p>|}
      in
      let sweep =
        [
          q_le (2 * nrows / 3);
          q_le (nrows / 2);
          q_range (nrows / 4) (3 * nrows / 4);
          q_range (nrows / 4) (3 * nrows / 4);
          q_le (nrows / 3);
          q_join;
          q_join;
        ]
      in
      let strict cat query =
        match Med_exec.run cat query with
        | trees -> Ok (render trees)
        | exception Source.Unavailable s -> Error ("source:" ^ s)
        | exception Alg_exec.Source_unavailable s -> Error ("plan:" ^ s)
      in
      let partial cat query =
        let trees, skipped = Med_exec.run_partial cat query in
        (render trees, List.sort compare skipped)
      in
      let agree query =
        strict cat_off query = strict cat_on query
        && partial cat_off query = partial cat_on query
      in
      let all_agree () =
        List.for_all
          (fun mode ->
            Med_catalog.set_exec_mode cat_off mode;
            Med_catalog.set_exec_mode cat_on mode;
            List.for_all agree sweep && agree q_ext)
          modes
      in
      let before = all_agree () in
      (* replace the base data identically on both sides, then invalidate:
         the warm side must not serve the stale extent *)
      let re_register cat =
        Src_registry.remove (Med_catalog.registry cat) "crm";
        Src_registry.register (Med_catalog.registry cat)
          (Rel_source.make (make_customer_db ~name:"crm" ~rows:(nrows + 3)));
        Med_catalog.notify_invalidation cat "crm"
      in
      re_register cat_off;
      re_register cat_on;
      let after = all_agree () in
      before && after)

(* ------------------------------------------------------------------ *)
(* Metrics hygiene: semcache.* family                                  *)
(* ------------------------------------------------------------------ *)

let well_formed name =
  let component_ok c =
    String.length c > 0
    && String.for_all
         (fun ch -> (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') || ch = '_')
         c
  in
  let parts = String.split_on_char '.' name in
  List.length parts >= 2 && List.for_all component_ok parts

let test_semcache_metrics_hygiene () =
  (* Drive hit, partial, miss, invalidation so the counters register. *)
  let cat = Med_catalog.create ~sem_budget_bytes:(1 lsl 20) () in
  Med_catalog.register_source cat
    (Rel_source.make (make_customer_db ~name:"crm" ~rows:20));
  ignore (Med_exec.run cat (q_le 15));
  ignore (Med_exec.run cat (q_le 10));
  ignore (Med_exec.run cat (q_le 18));
  Med_catalog.notify_invalidation cat "crm";
  let names = Obs_metrics.names () in
  let sem = List.filter (fun n -> String.starts_with ~prefix:"semcache." n) names in
  List.iter
    (fun n ->
      if not (well_formed n) then Alcotest.failf "ill-formed metric name: %s" n)
    sem;
  List.iter
    (fun n ->
      if not (List.mem n sem) then Alcotest.failf "semcache metric missing: %s" n)
    [
      "semcache.hits";
      "semcache.partial_hits";
      "semcache.misses";
      "semcache.admissions";
      "semcache.evictions";
      "semcache.invalidations";
      "semcache.rows_local";
      "semcache.rows_shipped";
      "semcache.order_fallbacks";
      "semcache.view_hits";
    ]

(* ------------------------------------------------------------------ *)
(* View containment (Mat_contain)                                      *)
(* ------------------------------------------------------------------ *)

let test_view_containment () =
  let sys = Nimble.create ~sem_budget_bytes:(1 lsl 20) () in
  (match
     Nimble.register_source sys (Rel_source.make (make_customer_db ~name:"crm" ~rows:30))
   with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let define name text =
    match Nimble.define_view sys name text with
    | Ok () -> ()
    | Error m -> Alcotest.fail m
  in
  define "wide"
    {|WHERE <row><id>$i</id><name>$n</name><tier>$t</tier></row> IN "crm.customers",
           $i <= 25
      CONSTRUCT <c><i>$i</i><n>$n</n><t>$t</t></c>|};
  define "narrow"
    {|WHERE <row><id>$i</id><name>$n</name><tier>$t</tier></row> IN "crm.customers",
           $i <= 25, $t = 2
      CONSTRUCT <c><i>$i</i><n>$n</n><t>$t</t></c>|};
  (match Nimble.materialize_view sys "wide" with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (* the reference answer, computed before the source is cut off *)
  let expected =
    match Nimble.query sys {|WHERE <c><i>$i</i><n>$n</n><t>$t</t></c> IN "narrow"
                             CONSTRUCT <c><i>$i</i><n>$n</n><t>$t</t></c>|} with
    | Ok trees -> render trees
    | Error m -> Alcotest.fail m
  in
  check bool_t "containment produced answers" true (expected <> "");
  let st = Sem_cache.stats (Nimble.sem_cache sys) in
  check bool_t "served by the subsuming materialized view" true
    (st.Sem_cache.sem_view_hits > 0);
  (* the filtered answer matches recomputing the view directly *)
  let direct =
    let cat = Med_catalog.create () in
    Med_catalog.register_source cat
      (Rel_source.make (make_customer_db ~name:"crm" ~rows:30));
    render
      (Med_exec.run_text cat
         {|WHERE <row><id>$i</id><name>$n</name><tier>$t</tier></row> IN "crm.customers",
                $i <= 25, $t = 2
           CONSTRUCT <c><i>$i</i><n>$n</n><t>$t</t></c>|})
  in
  check string_t "filtered extent = recomputed view" direct expected

let () =
  let props = List.map QCheck_alcotest.to_alcotest [ prop_sem_cache_transparent ] in
  Alcotest.run "semantic"
    [
      ( "sem_pred",
        [
          Alcotest.test_case "tautology" `Quick test_pred_tautology;
          Alcotest.test_case "ranges" `Quick test_pred_ranges;
          Alcotest.test_case "disjoint + unsat" `Quick test_pred_disjoint;
          Alcotest.test_case "opaque conjuncts" `Quick test_pred_opaque;
          Alcotest.test_case "remainder partition" `Quick test_pred_remainder;
        ] );
      ( "canonical_keys",
        [
          Alcotest.test_case "alias renaming" `Quick test_canonical_alias_renaming;
          Alcotest.test_case "self join" `Quick test_canonical_self_join;
        ] );
      ( "sem_cache",
        [
          Alcotest.test_case "order detection" `Quick test_entry_order_detection;
          Alcotest.test_case "projection mismatch" `Quick test_entry_projection_mismatch;
          Alcotest.test_case "disabled refuses" `Quick test_cache_disabled_refuses;
          Alcotest.test_case "eviction order" `Quick test_cache_eviction_order;
          Alcotest.test_case "invalidation" `Quick test_cache_invalidation;
        ] );
      ( "mat_select",
        [ Alcotest.test_case "optimal cap" `Quick test_select_optimal_cap ] );
      ( "rewrite",
        [
          Alcotest.test_case "full hit ships nothing" `Quick test_sem_full_hit_ships_nothing;
          Alcotest.test_case "partial ships remainder" `Quick
            test_sem_partial_ships_remainder;
          Alcotest.test_case "answers while offline" `Quick
            test_sem_answers_while_source_offline;
        ] );
      ("equivalence", props);
      ( "metrics",
        [ Alcotest.test_case "semcache.* hygiene" `Quick test_semcache_metrics_hygiene ] );
      ( "views",
        [ Alcotest.test_case "containment lookup" `Quick test_view_containment ] );
    ]
