(* Fault injection & resilience: deterministic Net_sim fault schedules,
   the Src_retry backoff/deadline/breaker engine, partial-mode stale
   serving, and a chaos property driving random fault schedules through
   all three execution engines in both strict and partial mode. *)

let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string
let check = Alcotest.check
let q = Xq_parser.parse_exn

(* ------------------------------------------------------------------ *)
(* Harness: a one-source federation under a fault schedule             *)
(* ------------------------------------------------------------------ *)

let make_crm () =
  let db = Rel_db.create ~name:"crm" () in
  ignore (Rel_db.exec db "CREATE TABLE customers (id INT, name TEXT, tier INT)");
  ignore (Rel_db.exec db "INSERT INTO customers VALUES (1, 'Acme', 1)");
  ignore (Rel_db.exec db "INSERT INTO customers VALUES (2, 'Globex', 2)");
  ignore (Rel_db.exec db "INSERT INTO customers VALUES (3, 'Initech', 2)");
  db

let catalog ?(frag_capacity = 0) ?frag_ttl_ms ?(sem_budget = 0) ?(faults = []) () =
  let cat =
    Med_catalog.create ?frag_ttl_ms ~frag_capacity ~sem_budget_bytes:sem_budget ()
  in
  let src, _ =
    Net_sim.wrap ~seed:7 ~faults Net_sim.default_profile (Rel_source.make (make_crm ()))
  in
  Med_catalog.register_source cat src;
  cat

let query =
  q
    {|WHERE <row><name>$n</name><tier>$t</tier></row> IN "crm.customers", $t = 2
      CONSTRUCT <c>$n</c>|}

let render r = List.map Dtree.to_string r.Med_exec.trees

(* The fault-free answer, computed against a twin catalog so neither
   caches nor breaker state bleed into the run under test. *)
let baseline () =
  Obs_clock.reset_virtual ();
  let cat = catalog () in
  let r = Med_exec.run_compiled cat (Med_exec.compile cat query) in
  render r

let pol ?(retries = 0) ?(base = 10.0) ?(max_b = 80.0) ?(jitter = 0.0) ?deadline
    ?(breaker = false) ?(threshold = 3) ?(cooldown = 100.0) ?(stale = false) () =
  {
    Src_retry.max_retries = retries;
    base_backoff_ms = base;
    max_backoff_ms = max_b;
    jitter;
    call_deadline_ms = deadline;
    breaker;
    breaker_threshold = threshold;
    breaker_cooldown_ms = cooldown;
    serve_stale = stale;
  }

let expect_unavailable name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Source.Unavailable")
  | exception Source.Unavailable _ -> ()
  | exception Alg_exec.Source_unavailable _ -> ()

(* ------------------------------------------------------------------ *)
(* Backoff arithmetic                                                  *)
(* ------------------------------------------------------------------ *)

let test_backoff_cap () =
  let p = pol ~base:10.0 ~max_b:40.0 ~jitter:0.0 () in
  let rng = Prng.create 1 in
  List.iteri
    (fun attempt expected ->
      Alcotest.(check (float 0.001))
        (Printf.sprintf "attempt %d" attempt)
        expected
        (Src_retry.backoff_ms p rng ~attempt))
    [ 10.0; 20.0; 40.0; 40.0; 40.0 ]

let test_backoff_jitter_deterministic () =
  let p = pol ~base:10.0 ~max_b:40.0 ~jitter:0.25 () in
  let seq rng = List.init 6 (fun attempt -> Src_retry.backoff_ms p rng ~attempt) in
  let a = seq (Prng.create 42) and b = seq (Prng.create 42) in
  check Alcotest.(list (float 0.000001)) "same seed, same jitter stream" a b;
  List.iteri
    (fun attempt d ->
      let capped = Float.min (10.0 *. (2.0 ** float_of_int attempt)) 40.0 in
      check bool_t
        (Printf.sprintf "attempt %d in [capped, capped*1.25]" attempt)
        true
        (d >= capped && d <= capped *. 1.25))
    a

(* ------------------------------------------------------------------ *)
(* Breaker state machine                                               *)
(* ------------------------------------------------------------------ *)

let test_breaker_transitions () =
  Obs_clock.reset_virtual ();
  let t = Src_retry.create ~seed:3 () in
  Src_retry.set_policy t (pol ~breaker:true ~threshold:2 ~cooldown:50.0 ());
  let calls = ref 0 in
  let fail () =
    incr calls;
    raise (Source.Unavailable "s1")
  in
  let state () = Src_retry.breaker_state_name t "s1" in
  check string_t "unknown source reads closed" "closed" (state ());
  expect_unavailable "failure 1" (fun () -> Src_retry.call t ~source:"s1" fail);
  check string_t "one strike stays closed" "closed" (state ());
  expect_unavailable "failure 2" (fun () -> Src_retry.call t ~source:"s1" fail);
  check string_t "threshold opens the breaker" "open" (state ());
  (* Open + cooling down: fail fast, never touch the source. *)
  let before = !calls in
  let _, _, f0 = Src_retry.counters () in
  expect_unavailable "fast fail" (fun () -> Src_retry.call t ~source:"s1" fail);
  check int_t "fast fail skips the source" before !calls;
  let _, _, f1 = Src_retry.counters () in
  check int_t "fast fail counted" (f0 + 1) f1;
  Obs_clock.advance 49.0;
  expect_unavailable "still cooling" (fun () -> Src_retry.call t ~source:"s1" fail);
  check int_t "still fast-failing just before cool-down" before !calls;
  check string_t "still open" "open" (state ());
  (* Cool-down expired: one half-open probe goes through; its failure
     re-opens immediately. *)
  Obs_clock.advance 2.0;
  expect_unavailable "failed probe" (fun () -> Src_retry.call t ~source:"s1" fail);
  check int_t "probe touched the source" (before + 1) !calls;
  check string_t "failed probe re-opens" "open" (state ());
  (* Next cool-down: a successful probe closes the breaker. *)
  Obs_clock.advance 51.0;
  let r = Src_retry.call t ~source:"s1" (fun () -> incr calls; 42) in
  check int_t "successful probe answers" 42 r;
  check string_t "successful probe closes" "closed" (state ());
  (* Closed again: calls pass straight through. *)
  check int_t "pass-through after close" 7 (Src_retry.call t ~source:"s1" (fun () -> 7))

let test_call_deadline_gives_up () =
  Obs_clock.reset_virtual ();
  let t = Src_retry.create () in
  Src_retry.set_policy t (pol ~retries:5 ~base:10.0 ~jitter:0.0 ~deadline:12.0 ());
  let r0, u0, _ = Src_retry.counters () in
  expect_unavailable "deadline" (fun () ->
      Src_retry.call t ~source:"s" (fun () -> raise (Source.Unavailable "s")));
  let r1, u1, _ = Src_retry.counters () in
  check int_t "one retry fit the 12ms budget" 1 (r1 - r0);
  check int_t "second backoff overshot: gave up" 1 (u1 - u0);
  Alcotest.(check (float 0.001)) "only the first backoff was charged" 10.0
    (Obs_clock.virtual_ms ())

let test_query_deadline_bounds_retries () =
  Obs_clock.reset_virtual ();
  let t = Src_retry.create () in
  Src_retry.set_policy t (pol ~retries:3 ~base:10.0 ~jitter:0.0 ());
  let r0, u0, _ = Src_retry.counters () in
  expect_unavailable "query budget" (fun () ->
      Src_retry.with_query t ~deadline_ms:5.0 (fun () ->
          Src_retry.call t ~source:"s" (fun () -> raise (Source.Unavailable "s"))));
  let r1, u1, _ = Src_retry.counters () in
  check int_t "no retry fits a 5ms query budget" 0 (r1 - r0);
  check int_t "gave up instead" 1 (u1 - u0);
  Alcotest.(check (float 0.001)) "no backoff charged" 0.0 (Obs_clock.virtual_ms ())

(* ------------------------------------------------------------------ *)
(* Transient recovery through the mediator                             *)
(* ------------------------------------------------------------------ *)

let test_transient_window_recovers () =
  let expected = baseline () in
  Obs_clock.reset_virtual ();
  let cat = catalog ~faults:[ Net_sim.offline_window ~from_ms:0.0 ~until_ms:20.0 ] () in
  Med_catalog.set_retry_policy cat (pol ~retries:3 ~base:10.0 ());
  let r0, _, _ = Src_retry.counters () in
  let r = Med_exec.run_compiled cat (Med_exec.compile cat query) in
  let r1, _, _ = Src_retry.counters () in
  check Alcotest.(list string_t) "answer identical to fault-free run" expected (render r);
  check bool_t "at least one retry was spent" true (r1 - r0 >= 1)

let test_no_retries_fail_in_window () =
  Obs_clock.reset_virtual ();
  let cat = catalog ~faults:[ Net_sim.offline_window ~from_ms:0.0 ~until_ms:20.0 ] () in
  expect_unavailable "strict, no retries" (fun () ->
      Med_exec.run_compiled cat (Med_exec.compile cat query))

(* Availability sweep: under a seeded purely-transient schedule at
   availability 0.7, a 2-retry budget whose backoff outlasts the window
   recovers every fragment of every query. *)
let test_availability_07_full_recovery () =
  let expected = baseline () in
  Obs_clock.reset_virtual ();
  let faults =
    Net_sim.availability_schedule ~seed:1 ~availability:0.7 ~period_ms:40.0
      ~horizon_ms:10000.0
  in
  let cat = catalog ~faults () in
  Med_catalog.set_retry_policy cat (pol ~retries:2 ~base:15.0 ~max_b:60.0 ());
  let compiled = Med_exec.compile cat query in
  for i = 1 to 20 do
    let r = Med_exec.run_compiled_partial cat compiled in
    check Alcotest.(list string_t)
      (Printf.sprintf "round %d complete" i)
      [] r.Med_exec.skipped_sources;
    check Alcotest.(list string_t)
      (Printf.sprintf "round %d answer" i)
      expected (render r);
    Obs_clock.advance 13.0
  done

(* ------------------------------------------------------------------ *)
(* Mid-stream failure: truncated results must not leak anywhere        *)
(* ------------------------------------------------------------------ *)

let test_midstream_pollutes_nothing () =
  Obs_clock.reset_virtual ();
  let cat =
    catalog ~frag_capacity:8 ~sem_budget:4096
      ~faults:[ Net_sim.midstream_window ~from_ms:0.0 ~until_ms:infinity ~prefix:1 ]
      ()
  in
  let compiled = Med_exec.compile cat query in
  expect_unavailable "strict mid-stream" (fun () -> Med_exec.run_compiled cat compiled);
  check int_t "fragment cache untouched" 0
    (Frag_cache.size (Med_catalog.frag_cache cat));
  check int_t "semantic cache untouched" 0
    (Sem_cache.entry_count (Med_catalog.sem_cache cat));
  check int_t "feedback estimator untouched" 0
    (Obs_feedback.size (Med_catalog.feedback cat));
  (* Partial mode skips the source and still learns nothing. *)
  let r = Med_exec.run_compiled_partial cat compiled in
  check Alcotest.(list string_t) "source skipped" [ "crm" ] r.Med_exec.skipped_sources;
  check int_t "rows from a dead source" 0 (List.length r.Med_exec.trees);
  check int_t "fragment cache still empty" 0
    (Frag_cache.size (Med_catalog.frag_cache cat));
  check int_t "feedback still empty" 0 (Obs_feedback.size (Med_catalog.feedback cat))

let test_midstream_transient_recovers_complete () =
  let expected = baseline () in
  Obs_clock.reset_virtual ();
  let cat =
    catalog ~frag_capacity:8
      ~faults:[ Net_sim.midstream_window ~from_ms:0.0 ~until_ms:20.0 ~prefix:1 ]
      ()
  in
  Med_catalog.set_retry_policy cat (pol ~retries:3 ~base:10.0 ());
  let r = Med_exec.run_compiled cat (Med_exec.compile cat query) in
  check Alcotest.(list string_t) "recovered past the window" expected (render r);
  (* Whatever got cached is the complete post-recovery extent: a repeat
     run answers identically from the cache. *)
  check bool_t "complete extent cached" true
    (Frag_cache.size (Med_catalog.frag_cache cat) > 0);
  let again = Med_exec.run_compiled cat (Med_exec.compile cat query) in
  check Alcotest.(list string_t) "cached extent is complete" expected (render again)

(* ------------------------------------------------------------------ *)
(* Stale serving (partial-mode degradation)                            *)
(* ------------------------------------------------------------------ *)

let test_stale_serving () =
  Obs_clock.reset_virtual ();
  let cat =
    catalog ~frag_capacity:8 ~frag_ttl_ms:50.0
      ~faults:[ Net_sim.offline_window ~from_ms:30.0 ~until_ms:infinity ]
      ()
  in
  let compiled = Med_exec.compile cat query in
  let fresh = render (Med_exec.run_compiled cat compiled) in
  Obs_clock.advance 100.0;
  (* TTL expired and the source is now gone for good.  Strict mode and
     a stale-off policy both lose the source. *)
  expect_unavailable "strict never serves stale" (fun () ->
      Med_exec.run_compiled cat compiled);
  let r_off = Med_exec.run_compiled_partial cat compiled in
  check Alcotest.(list string_t) "stale off: source skipped" [ "crm" ]
    r_off.Med_exec.skipped_sources;
  (* Stale serving on: the expired extent answers, flagged in the
     envelope, and the source is not reported skipped. *)
  Med_catalog.set_retry_policy cat (pol ~stale:true ());
  let r = Med_exec.run_compiled_partial cat compiled in
  check Alcotest.(list string_t) "served stale" [ "crm" ] r.Med_exec.stale_sources;
  check Alcotest.(list string_t) "not skipped" [] r.Med_exec.skipped_sources;
  check Alcotest.(list string_t) "stale answer equals the cached one" fresh (render r)

(* ------------------------------------------------------------------ *)
(* Partial mode: skipped = exactly the budget-exhausted sources        *)
(* ------------------------------------------------------------------ *)

let test_skipped_matches_exhausted () =
  Obs_clock.reset_virtual ();
  let cat = Med_catalog.create () in
  let crm, _ =
    Net_sim.wrap ~seed:7 Net_sim.default_profile (Rel_source.make (make_crm ()))
  in
  let ext_db = Rel_db.create ~name:"ext" () in
  ignore (Rel_db.exec ext_db "CREATE TABLE people (id INT, name TEXT)");
  ignore (Rel_db.exec ext_db "INSERT INTO people VALUES (1, 'p1')");
  let ext, _ =
    Net_sim.wrap ~seed:7
      ~faults:[ Net_sim.persistently_offline ]
      Net_sim.default_profile (Rel_source.make ext_db)
  in
  Med_catalog.register_source cat crm;
  Med_catalog.register_source cat ext;
  Med_catalog.set_retry_policy cat (pol ~retries:1 ~base:5.0 ());
  let join =
    q
      {|WHERE <row><id>$i</id><tier>$t</tier></row> IN "crm.customers",
             <row><id>$i</id><name>$n</name></row> IN "ext.people"
        CONSTRUCT <p>$n</p>|}
  in
  let r = Med_exec.run_compiled_partial cat (Med_exec.compile cat join) in
  check Alcotest.(list string_t) "only the dead source is skipped" [ "ext" ]
    (List.sort compare r.Med_exec.skipped_sources)

(* ------------------------------------------------------------------ *)
(* Chaos: random fault schedules x engines x modes                     *)
(* ------------------------------------------------------------------ *)

(* Per iteration a seed derives the fault schedule (healthy, transient
   offline the retry budget outlasts, persistent offline, or persistent
   mid-stream), the execution engine, and the fragment-cache size.  The
   properties: strict either answers byte-identically to a fault-free
   twin or raises cleanly without polluting any cache; partial skips
   exactly the persistent source; an all-transient schedule with retries
   on is indistinguishable from no faults at all. *)
let prop_chaos =
  QCheck2.Test.make ~name:"chaos: fault schedules across engines and modes" ~count:30
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let g = Prng.create seed in
      let kind = Prng.int g 4 in
      let faults =
        match kind with
        | 0 -> []
        | 1 ->
          let from = float_of_int (Prng.int g 10) in
          let len = float_of_int (5 + Prng.int g 20) in
          [ Net_sim.offline_window ~from_ms:from ~until_ms:(from +. len) ]
        | 2 -> [ Net_sim.persistently_offline ]
        | _ -> [ Net_sim.midstream_window ~from_ms:0.0 ~until_ms:infinity ~prefix:1 ]
      in
      let engine =
        match Prng.int g 3 with
        | 0 -> Alg_batch.Tuple
        | 1 -> Alg_batch.Batch { chunk = 4 }
        | _ -> Alg_batch.Parallel { domains = 2; chunk = 4 }
      in
      let frag_capacity = if Prng.int g 2 = 0 then 8 else 0 in
      let persistent = kind >= 2 in
      (* Fault-free twin under the same engine. *)
      Obs_clock.reset_virtual ();
      let cat0 = catalog () in
      Med_catalog.set_exec_mode cat0 engine;
      let expected = render (Med_exec.run_compiled cat0 (Med_exec.compile cat0 query)) in
      (* The run under test: 2 retries, backoff 15/30 outlasts any
         transient window above. *)
      Obs_clock.reset_virtual ();
      let cat = catalog ~frag_capacity ~faults () in
      Med_catalog.set_exec_mode cat engine;
      Med_catalog.set_retry_policy cat (pol ~retries:2 ~base:15.0 ~max_b:60.0 ());
      let compiled = Med_exec.compile cat query in
      let strict_ok =
        match Med_exec.run_compiled cat compiled with
        | r -> (not persistent) && render r = expected
        | exception (Source.Unavailable _ | Alg_exec.Source_unavailable _) ->
          (* Clean failure: nothing from the dead source was cached. *)
          persistent
          && Frag_cache.invalidate_source (Med_catalog.frag_cache cat) "crm" = 0
          && Obs_feedback.size (Med_catalog.feedback cat) = 0
      in
      let p = Med_exec.run_compiled_partial cat compiled in
      let partial_ok =
        if persistent then
          p.Med_exec.skipped_sources = [ "crm" ] && p.Med_exec.trees = []
        else p.Med_exec.skipped_sources = [] && render p = expected
      in
      strict_ok && partial_ok)

let () =
  let props = List.map QCheck_alcotest.to_alcotest [ prop_chaos ] in
  Alcotest.run "fault"
    [
      ( "backoff",
        [
          Alcotest.test_case "cap arithmetic" `Quick test_backoff_cap;
          Alcotest.test_case "jitter deterministic per seed" `Quick
            test_backoff_jitter_deterministic;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "state transitions" `Quick test_breaker_transitions;
          Alcotest.test_case "per-call deadline gives up" `Quick
            test_call_deadline_gives_up;
          Alcotest.test_case "query deadline bounds retries" `Quick
            test_query_deadline_bounds_retries;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "transient window recovers" `Quick
            test_transient_window_recovers;
          Alcotest.test_case "no retries fail in window" `Quick
            test_no_retries_fail_in_window;
          Alcotest.test_case "availability 0.7 full recovery" `Quick
            test_availability_07_full_recovery;
        ] );
      ( "midstream",
        [
          Alcotest.test_case "truncated rows pollute nothing" `Quick
            test_midstream_pollutes_nothing;
          Alcotest.test_case "transient midstream recovers complete" `Quick
            test_midstream_transient_recovers_complete;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "stale serving in partial mode" `Quick test_stale_serving;
          Alcotest.test_case "skipped matches exhausted budgets" `Quick
            test_skipped_matches_exhausted;
        ] );
      ("chaos", props);
    ]
