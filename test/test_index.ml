(* Tests for the path & value index subsystem: the structural guide,
   value indexes, the manager's probe/epoch/invalidation contract, and
   the indexed ≡ unindexed equivalence property across engines. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let string_t = Alcotest.string

let tree_of s = Dtree.of_xml_element (Xml_parser.parse_element_exn s)
let path s = Xml_path.parse_exn s

let walker tree p =
  List.map Dtree.of_xml_element (Xml_path.select p (Dtree.to_xml_element tree))

let render trees = String.concat "\n" (List.map Dtree.to_string trees)

(* Every test owns the global registry. *)
let fresh () =
  Idx_manager.clear ();
  Idx_manager.set_mode Idx_manager.Auto;
  Idx_manager.reset_stats ()

(* ------------------------------------------------------------------ *)
(* Idx_guide                                                           *)
(* ------------------------------------------------------------------ *)

let sample_forest () =
  [
    tree_of "<r><a><b>1</b><a><b>2</b></a></a><b>3</b></r>";
    tree_of "<r><a><b>4</b></a></r>";
  ]

let test_guide_counts () =
  let g = Idx_guide.build (sample_forest ()) in
  (* 2 roots + 3 a + 4 b = 9 element nodes; paths r, r/a, r/a/b, r/a/a,
     r/a/a/b, r/b. *)
  check int_t "nodes" 9 (Idx_guide.node_count g);
  check int_t "paths" 6 (Idx_guide.path_count g);
  check bool_t "bytes accounted" true (Idx_guide.bytes g > 0)

let test_guide_probe_matches_walker () =
  let forest = sample_forest () in
  let g = Idx_guide.build forest in
  List.iteri
    (fun root tree ->
      List.iter
        (fun p ->
          let p = path p in
          match Idx_guide.probe g ~root p with
          | None -> Alcotest.fail "probe should support this path"
          | Some ids ->
            let got = render (List.map (Idx_guide.node g) ids) in
            let want = render (walker tree p) in
            check string_t "probe = walker, document order" want got)
        [ "//b"; "/a/b"; "//a//b"; "//a"; "/*"; "//*" ])
    forest

let test_guide_set_semantics () =
  (* <b>2</b> is reachable from two <a> alignments of //a//b; the guide
     stores it under one label path, so it can only come back once. *)
  let g = Idx_guide.build (sample_forest ()) in
  match Idx_guide.probe g ~root:0 (path "//a//b") with
  | None -> Alcotest.fail "supported"
  | Some ids -> check int_t "each b once" 2 (List.length ids)

let test_guide_unsupported () =
  let g = Idx_guide.build (sample_forest ()) in
  check bool_t "parent axis unsupported" false (Idx_guide.supported (path "//b/.."));
  check bool_t "position unsupported" false
    (Idx_guide.supported (path "/a/b[position()=1]"));
  check bool_t "probe refuses" true (Idx_guide.probe g ~root:0 (path "//b/..") = None)

let test_guide_count_and_keys () =
  let g = Idx_guide.build (sample_forest ()) in
  check (Alcotest.option int_t) "b nodes across roots" (Some 4)
    (Idx_guide.count g (path "//b"));
  match Idx_guide.matching_keys g (path "//a/b") with
  | None -> Alcotest.fail "supported"
  | Some keys -> check int_t "two distinct b paths under a" 2 (List.length keys)

(* ------------------------------------------------------------------ *)
(* Idx_value                                                           *)
(* ------------------------------------------------------------------ *)

let test_value_eq_numeric_and_string () =
  let idx = Idx_value.build [ ("10", 1); ("10.0", 2); ("x", 3); ("10", 4) ] in
  (* 10 and 10.0 are numerically equal — exactly like compare_values. *)
  check (Alcotest.option (Alcotest.list int_t)) "numeric eq" (Some [ 1; 2; 4 ])
    (Idx_value.probe idx Xml_path.Eq "10.00");
  check (Alcotest.option (Alcotest.list int_t)) "string eq" (Some [ 3 ])
    (Idx_value.probe idx Xml_path.Eq "x")

let test_value_range () =
  let idx = Idx_value.build [ ("5", 1); ("50", 2); ("500", 3); ("abc", 4) ] in
  check (Alcotest.option (Alcotest.list int_t)) "lt numeric" (Some [ 1; 2 ])
    (Idx_value.probe idx Xml_path.Lt "100");
  (* "abc" compares as a string against a non-numeric rhs. *)
  check (Alcotest.option (Alcotest.list int_t)) "string order" (Some [ 4 ])
    (Idx_value.probe idx Xml_path.Gt "aaa");
  check bool_t "neq unsupported" true (Idx_value.probe idx Xml_path.Neq "5" = None)

(* ------------------------------------------------------------------ *)
(* Idx_manager: probe equivalence, modes, epoch                        *)
(* ------------------------------------------------------------------ *)

let doc () =
  tree_of
    {|<catalog><product sku="widget"><price>25</price></product><product sku="gadget"><price>70</price></product></catalog>|}

let test_manager_try_select_equals_walker () =
  fresh ();
  let t = doc () in
  Idx_manager.register "src:shop/catalog" [ t ];
  List.iter
    (fun p ->
      let p = path p in
      match Idx_manager.try_select t p with
      | None -> Alcotest.fail "registered root should answer"
      | Some (got, _) ->
        check string_t "byte-identical with walker" (render (walker t p)) (render got))
    [ "//product"; "//product[@sku='widget']"; "//product[price<50]"; "//price" ];
  let g, v, _ = Idx_manager.counters () in
  check bool_t "guide hits ticked" true (g > 0);
  check bool_t "value hits ticked" true (v > 0)

let test_manager_off_and_unregistered () =
  fresh ();
  let t = doc () in
  Idx_manager.register "src:shop/catalog" [ t ];
  Idx_manager.set_mode Idx_manager.Off;
  check bool_t "off never probes" true (Idx_manager.try_select t (path "//product") = None);
  Idx_manager.set_mode Idx_manager.Auto;
  check bool_t "foreign tree unanswered" true
    (Idx_manager.try_select (doc ()) (path "//product") = None)

let test_manager_epoch_planning_visible_only () =
  fresh ();
  let e0 = Idx_manager.epoch () in
  (* Registering (and dropping) a never-built entry is planning-invisible. *)
  Idx_manager.register "src:shop/catalog" [ doc () ];
  check int_t "register alone: no bump" e0 (Idx_manager.epoch ());
  Idx_manager.unregister "src:shop/catalog";
  check int_t "unbuilt drop: no bump" e0 (Idx_manager.epoch ());
  (* A build moves the epoch; dropping the built entry moves it again. *)
  Idx_manager.register "src:shop/catalog" [ doc () ];
  ignore (Idx_manager.build "src:shop/catalog");
  let e1 = Idx_manager.epoch () in
  check bool_t "build bumps" true (e1 > e0);
  Idx_manager.drop_prefix "src:shop/";
  check bool_t "built drop bumps" true (Idx_manager.epoch () > e1);
  let em = Idx_manager.epoch () in
  Idx_manager.set_mode Idx_manager.Eager;
  check bool_t "mode change bumps" true (Idx_manager.epoch () > em)

let test_manager_estimate_never_builds () =
  fresh ();
  Idx_manager.register "src:shop/catalog" [ doc () ];
  check bool_t "no guide yet: unknown" true
    (Idx_manager.estimate "src:shop/catalog" (path "//product") = None);
  ignore (Idx_manager.build "src:shop/catalog");
  check (Alcotest.option (Alcotest.float 0.0)) "exact after build" (Some 2.0)
    (Idx_manager.estimate "src:shop/catalog" (path "//product"))

let test_manager_is_registered () =
  fresh ();
  Idx_manager.register "src:shop/catalog" [ doc () ];
  check bool_t "present" true (Idx_manager.is_registered "src:shop/catalog");
  Idx_manager.drop_prefix "src:shop/";
  check bool_t "dropped" false (Idx_manager.is_registered "src:shop/catalog")

(* ------------------------------------------------------------------ *)
(* QCheck: indexed ≡ unindexed across engines, modes and invalidation  *)
(* ------------------------------------------------------------------ *)

let catalog_xml g nprod =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "<catalog>";
  for _ = 1 to nprod do
    Buffer.add_string buf
      (Printf.sprintf
         {|<product sku="sku%d"><price>%d</price><cat>%s</cat></product>|}
         (1 + Prng.int g (max 1 (nprod / 2)))
         (10 + Prng.int g 90)
         (if Prng.int g 2 = 0 then "tools" else "infra"))
  done;
  Buffer.add_string buf "</catalog>";
  Buffer.contents buf

let queries =
  [|
    {|WHERE <product sku=$s><price>$p</price></product> IN "products.catalog", $p < 50
      CONSTRUCT <r><s>$s</s><p>$p</p></r>|};
    {|WHERE <r><s>$s</s><p>$p</p></r> IN "cheap"
      CONSTRUCT <x>$s</x>|};
  |]

let engine_of = function
  | 0 -> Alg_batch.Tuple
  | 1 -> Alg_batch.Batch { chunk = 4 }
  | _ -> Alg_batch.Parallel { domains = 2; chunk = 3 }

let gen_case =
  let open QCheck2.Gen in
  let* seed = int_bound 9_999 in
  let* nprod = int_range 1 25 in
  let* engine = int_bound 2 in
  let* strict = bool in
  let* eager = bool in
  pure (seed, nprod, engine, strict, eager)

let prop_indexed_equals_unindexed =
  QCheck2.Test.make
    ~name:"indexed = unindexed (engines x modes x refresh x invalidation)"
    ~print:(fun (seed, nprod, engine, strict, eager) ->
      Printf.sprintf "seed=%d nprod=%d engine=%d strict=%b eager=%b" seed nprod
        engine strict eager)
    ~count:30 gen_case
    (fun (seed, nprod, engine, strict, eager) ->
      let xml = catalog_xml (Prng.create seed) nprod in
      (* One full session under [mode]: query the source and a
         materialized view, refresh the view, invalidate the source,
         query again — the transcript must not depend on indexing. *)
      let transcript mode =
        Idx_manager.clear ();
        Idx_manager.reset_stats ();
        Idx_manager.set_mode mode;
        let cat = Med_catalog.create () in
        Med_catalog.register_source cat
          (Xml_source.of_xml_strings ~name:"products" [ ("catalog", xml) ]);
        Med_catalog.define_view_text cat "cheap"
          {|WHERE <product sku=$s><price>$p</price></product> IN "products.catalog", $p < 40
            CONSTRUCT <r><s>$s</s><p>$p</p></r>|};
        Med_catalog.set_exec_mode cat (engine_of engine);
        let store = Mat_store.create cat in
        ignore (Mat_store.materialize store "cheap");
        let view_lookup = Mat_store.lookup store in
        let one q =
          let q = Xq_parser.parse_exn q in
          if strict then render (Med_exec.run ~view_lookup cat q)
          else begin
            let trees, skipped = Med_exec.run_partial ~view_lookup cat q in
            render trees ^ "|" ^ String.concat "," skipped
          end
        in
        let runs = Array.to_list (Array.map one queries) in
        Mat_store.refresh store "cheap";
        let runs = runs @ Array.to_list (Array.map one queries) in
        Med_catalog.notify_invalidation cat "products";
        let runs = runs @ Array.to_list (Array.map one queries) in
        String.concat "\n--\n" runs
      in
      let off = transcript Idx_manager.Off in
      let on = transcript (if eager then Idx_manager.Eager else Idx_manager.Auto) in
      fresh ();
      String.equal off on)

(* ------------------------------------------------------------------ *)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_indexed_equals_unindexed ] in
  Alcotest.run "index"
    [
      ( "guide",
        [
          Alcotest.test_case "counts" `Quick test_guide_counts;
          Alcotest.test_case "probe matches walker" `Quick test_guide_probe_matches_walker;
          Alcotest.test_case "set semantics" `Quick test_guide_set_semantics;
          Alcotest.test_case "unsupported paths refused" `Quick test_guide_unsupported;
          Alcotest.test_case "count and keys" `Quick test_guide_count_and_keys;
        ] );
      ( "value",
        [
          Alcotest.test_case "equality buckets" `Quick test_value_eq_numeric_and_string;
          Alcotest.test_case "ranges" `Quick test_value_range;
        ] );
      ( "manager",
        [
          Alcotest.test_case "try_select = walker" `Quick
            test_manager_try_select_equals_walker;
          Alcotest.test_case "off mode and foreign trees" `Quick
            test_manager_off_and_unregistered;
          Alcotest.test_case "epoch: planning-visible changes only" `Quick
            test_manager_epoch_planning_visible_only;
          Alcotest.test_case "estimate never builds" `Quick
            test_manager_estimate_never_builds;
          Alcotest.test_case "is_registered" `Quick test_manager_is_registered;
        ] );
      ("equivalence", qsuite);
    ]
