(* Tests for the hybrid materialization subsystem: view store with
   refresh policies, view selection, result cache. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let string_t = Alcotest.string

(* Shared fixture: a catalog with one relational source and a view. *)
let make_fixture () =
  let db = Rel_db.create ~name:"crm" () in
  ignore (Rel_db.exec db "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, region TEXT)");
  ignore
    (Rel_db.exec db
       "INSERT INTO customers VALUES (1, 'Acme', 'west'), (2, 'Globex', 'east'), (3, 'Initech', 'west')");
  let cat = Med_catalog.create () in
  Med_catalog.register_source cat (Rel_source.make db);
  Med_catalog.define_view_text cat "west"
    {|WHERE <row><id>$i</id><name>$n</name><region>"west"</region></row> IN "crm.customers"
      CONSTRUCT <customer><id>$i</id><name>$n</name></customer>|};
  (db, cat)

(* ------------------------------------------------------------------ *)
(* Mat_store                                                           *)
(* ------------------------------------------------------------------ *)

let test_store_materialize_lookup () =
  let _, cat = make_fixture () in
  let store = Mat_store.create cat in
  ignore (Mat_store.materialize store "west");
  (match Mat_store.lookup store "west" with
  | Some trees -> check int_t "two west customers" 2 (List.length trees)
  | None -> Alcotest.fail "expected materialized data");
  check bool_t "storage used" true (Mat_store.storage_used store > 0);
  check (Alcotest.list string_t) "listed" [ "west" ] (Mat_store.materialized_names store)

let test_store_manual_policy_is_stale () =
  let db, cat = make_fixture () in
  let store = Mat_store.create cat in
  ignore (Mat_store.materialize store "west");
  ignore (Rel_db.exec db "INSERT INTO customers VALUES (4, 'Hooli', 'west')");
  (* Manual policy: the copy is stale until an explicit refresh. *)
  (match Mat_store.lookup store "west" with
  | Some trees -> check int_t "still two (stale)" 2 (List.length trees)
  | None -> Alcotest.fail "expected data");
  Mat_store.refresh store "west";
  match Mat_store.lookup store "west" with
  | Some trees -> check int_t "three after refresh" 3 (List.length trees)
  | None -> Alcotest.fail "expected data"

let test_store_on_access_policy () =
  let db, cat = make_fixture () in
  let store = Mat_store.create cat in
  ignore (Mat_store.materialize store ~policy:Mat_store.On_access "west");
  ignore (Rel_db.exec db "INSERT INTO customers VALUES (4, 'Hooli', 'west')");
  match Mat_store.lookup store "west" with
  | Some trees -> check int_t "fresh on access" 3 (List.length trees)
  | None -> Alcotest.fail "expected data"

let test_store_every_n_policy () =
  let db, cat = make_fixture () in
  let store = Mat_store.create cat in
  ignore (Mat_store.materialize store ~policy:(Mat_store.Every_n_queries 3) "west");
  ignore (Rel_db.exec db "INSERT INTO customers VALUES (4, 'Hooli', 'west')");
  Mat_store.tick store;
  (match Mat_store.lookup store "west" with
  | Some trees -> check int_t "not due yet" 2 (List.length trees)
  | None -> Alcotest.fail "expected data");
  Mat_store.tick store;
  Mat_store.tick store;
  (match Mat_store.lookup store "west" with
  | Some trees -> check int_t "due after 3 ticks" 3 (List.length trees)
  | None -> Alcotest.fail "expected data");
  match Mat_store.peek store "west" with
  | Some e -> check int_t "two versions" 2 e.Mat_store.version
  | None -> Alcotest.fail "expected entry"

let test_store_unknown_view () =
  let _, cat = make_fixture () in
  let store = Mat_store.create cat in
  try
    ignore (Mat_store.materialize store "nope");
    Alcotest.fail "expected Mat_error"
  with Mat_store.Mat_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Mat_select                                                          *)
(* ------------------------------------------------------------------ *)

let candidates =
  [
    { Mat_select.cand_view = "hot"; storage = 100; virtual_cost = 50.0; local_cost = 1.0 };
    { Mat_select.cand_view = "warm"; storage = 100; virtual_cost = 20.0; local_cost = 1.0 };
    { Mat_select.cand_view = "big"; storage = 900; virtual_cost = 100.0; local_cost = 2.0 };
    { Mat_select.cand_view = "cold"; storage = 50; virtual_cost = 10.0; local_cost = 1.0 };
  ]

let workload = [ ("hot", 100); ("warm", 40); ("big", 10); ("cold", 1) ]

let test_select_greedy_respects_budget () =
  let sel = Mat_select.select ~budget:250 candidates workload in
  check bool_t "budget respected" true (sel.Mat_select.total_storage <= 250);
  check bool_t "hot chosen" true (List.mem "hot" sel.Mat_select.chosen);
  check bool_t "big excluded (too large)" true (not (List.mem "big" sel.Mat_select.chosen))

let test_select_zero_budget () =
  let sel = Mat_select.select ~budget:0 candidates workload in
  check int_t "nothing fits" 0 (List.length sel.Mat_select.chosen)

let test_select_greedy_near_optimal () =
  let greedy = Mat_select.select ~budget:1000 candidates workload in
  let optimal = Mat_select.select_optimal ~budget:1000 candidates workload in
  check bool_t "greedy within 80% of optimal" true
    (greedy.Mat_select.total_benefit >= 0.8 *. optimal.Mat_select.total_benefit)

let test_select_evaluate () =
  let all_virtual = Mat_select.evaluate candidates workload [] in
  let with_hot = Mat_select.evaluate candidates workload [ "hot" ] in
  check bool_t "materializing hot reduces cost" true (with_hot < all_virtual);
  check bool_t "saving matches benefit" true
    (abs_float (all_virtual -. with_hot -. Mat_select.benefit (List.hd candidates) 100) < 1e-9)

let test_select_adaptive_drift () =
  let m = Mat_select.monitor ~budget:150 candidates in
  for _ = 1 to 50 do
    Mat_select.observe m "hot"
  done;
  (match Mat_select.reselect_if_drifted m ~threshold:0.1 with
  | Some sel -> check (Alcotest.list string_t) "hot selected" [ "hot" ] sel.Mat_select.chosen
  | None -> Alcotest.fail "expected initial selection");
  (* Load shifts decisively to warm. *)
  for _ = 1 to 500 do
    Mat_select.observe m "warm"
  done;
  match Mat_select.reselect_if_drifted m ~threshold:0.1 with
  | Some sel -> check bool_t "warm now chosen" true (List.mem "warm" sel.Mat_select.chosen)
  | None -> Alcotest.fail "expected re-selection after drift"

(* Property: greedy never exceeds the budget and never beats optimal. *)
let prop_greedy_sound =
  QCheck2.Test.make ~name:"greedy selection sound vs optimal" ~count:60
    QCheck2.Gen.(
      pair (int_range 1 500)
        (list_size (int_range 1 6)
           (triple (int_range 1 200) (int_range 0 50) (int_range 0 20))))
    (fun (budget, specs) ->
      let cands =
        List.mapi
          (fun i (storage, vc, freq) ->
            ignore freq;
            {
              Mat_select.cand_view = Printf.sprintf "v%d" i;
              storage;
              virtual_cost = float_of_int vc;
              local_cost = 1.0;
            })
          specs
      in
      let load = List.mapi (fun i (_, _, freq) -> (Printf.sprintf "v%d" i, freq)) specs in
      let g = Mat_select.select ~budget cands load in
      let o = Mat_select.select_optimal ~budget cands load in
      g.Mat_select.total_storage <= budget
      && g.Mat_select.total_benefit <= o.Mat_select.total_benefit +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Mat_cache                                                           *)
(* ------------------------------------------------------------------ *)

let tree n = Dtree.leaf "x" (Value.Int n)

let test_cache_hit_miss () =
  (* Local stats and the process-wide registry must agree. *)
  Obs_metrics.reset_all ();
  let c = Mat_cache.create ~capacity:2 () in
  check bool_t "miss" true (Mat_cache.get c "q1" = None);
  Mat_cache.put c "q1" [ tree 1 ];
  check bool_t "hit" true (Mat_cache.get c "q1" <> None);
  check bool_t "hit rate" true (abs_float (Mat_cache.hit_rate c -. 0.5) < 1e-9);
  check bool_t "registry counted the hit" true
    (Obs_metrics.counter_value "cache.hits" = Some 1);
  check bool_t "registry counted the miss" true
    (Obs_metrics.counter_value "cache.misses" = Some 1)

let test_cache_lru_eviction () =
  let c = Mat_cache.create ~capacity:2 () in
  Mat_cache.put c "a" [ tree 1 ];
  Mat_cache.put c "b" [ tree 2 ];
  ignore (Mat_cache.get c "a");        (* a is now most recent *)
  Mat_cache.put c "c" [ tree 3 ];      (* evicts b *)
  check bool_t "a kept" true (Mat_cache.get c "a" <> None);
  check bool_t "b evicted" true (Mat_cache.get c "b" = None);
  check int_t "one eviction" 1 (Mat_cache.stats c).Mat_cache.evictions;
  check bool_t "registry counted the eviction" true
    (match Obs_metrics.counter_value "cache.evictions" with
    | Some n -> n >= 1
    | None -> false)

let test_cache_source_invalidation () =
  let c = Mat_cache.create ~capacity:8 () in
  Mat_cache.put c ~sources:[ "crm" ] "q1" [ tree 1 ];
  Mat_cache.put c ~sources:[ "crm"; "products" ] "q2" [ tree 2 ];
  Mat_cache.put c ~sources:[ "products" ] "q3" [ tree 3 ];
  check int_t "two dropped" 2 (Mat_cache.invalidate_source c "crm");
  check bool_t "q3 survives" true (Mat_cache.get c "q3" <> None)

let test_cache_zero_capacity () =
  let c = Mat_cache.create ~capacity:0 () in
  Mat_cache.put c "q" [ tree 1 ];
  check bool_t "disabled" true (Mat_cache.get c "q" = None)

let test_cache_get_or_compute () =
  let c = Mat_cache.create ~capacity:4 () in
  let computations = ref 0 in
  let compute () =
    incr computations;
    [ tree 9 ]
  in
  ignore (Mat_cache.get_or_compute c "q" compute);
  ignore (Mat_cache.get_or_compute c "q" compute);
  check int_t "computed once" 1 !computations

(* Property: cache answers always equal recomputation. *)
let prop_cache_coherent =
  QCheck2.Test.make ~name:"cache returns what was stored" ~count:100
    QCheck2.Gen.(small_list (pair (int_bound 5) small_int))
    (fun ops ->
      let c = Mat_cache.create ~capacity:3 () in
      let model = Hashtbl.create 8 in
      List.for_all
        (fun (k, v) ->
          let key = Printf.sprintf "q%d" k in
          Mat_cache.put c key [ tree v ];
          Hashtbl.replace model key v;
          match Mat_cache.get c key with
          | Some [ t ] -> Dtree.text t = string_of_int (Hashtbl.find model key)
          | Some _ | None -> true (* evicted is fine; wrong value is not *))
        ops)

let () =
  let props = List.map QCheck_alcotest.to_alcotest [ prop_greedy_sound; prop_cache_coherent ] in
  Alcotest.run "materialize"
    [
      ( "store",
        [
          Alcotest.test_case "materialize/lookup" `Quick test_store_materialize_lookup;
          Alcotest.test_case "manual policy" `Quick test_store_manual_policy_is_stale;
          Alcotest.test_case "on-access policy" `Quick test_store_on_access_policy;
          Alcotest.test_case "every-n policy" `Quick test_store_every_n_policy;
          Alcotest.test_case "unknown view" `Quick test_store_unknown_view;
        ] );
      ( "selection",
        [
          Alcotest.test_case "greedy under budget" `Quick test_select_greedy_respects_budget;
          Alcotest.test_case "zero budget" `Quick test_select_zero_budget;
          Alcotest.test_case "near optimal" `Quick test_select_greedy_near_optimal;
          Alcotest.test_case "evaluate" `Quick test_select_evaluate;
          Alcotest.test_case "adaptive drift" `Quick test_select_adaptive_drift;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "source invalidation" `Quick test_cache_source_invalidation;
          Alcotest.test_case "zero capacity" `Quick test_cache_zero_capacity;
          Alcotest.test_case "get_or_compute" `Quick test_cache_get_or_compute;
        ]
        @ props );
    ]
