(* Tests for the XML substrate: parser, printer, cursor navigation and
   the path language. *)

let check = Alcotest.check
let string_t = Alcotest.string
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let parse s = Xml_parser.parse_element_exn s

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_simple () =
  let e = parse "<a/>" in
  check string_t "tag" "a" e.Xml_types.tag;
  check int_t "no children" 0 (List.length e.Xml_types.children)

let test_parse_attrs () =
  let e = parse {|<a x="1" y='two'/>|} in
  check (Alcotest.option string_t) "x" (Some "1") (Xml_types.attr e "x");
  check (Alcotest.option string_t) "y" (Some "two") (Xml_types.attr e "y");
  check (Alcotest.option string_t) "absent" None (Xml_types.attr e "z")

let test_parse_nested () =
  let e = parse "<a><b><c>hi</c></b><b/></a>" in
  check int_t "two b children" 2 (List.length (Xml_types.children_named e "b"));
  check string_t "text content" "hi" (Xml_types.text_content e)

let test_parse_entities () =
  let e = parse "<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos;</a>" in
  check string_t "decoded" {|<x> & "y" 'z'|} (Xml_types.text_content e)

let test_parse_numeric_entities () =
  let e = parse "<a>&#65;&#x42;</a>" in
  check string_t "decoded" "AB" (Xml_types.text_content e)

let test_parse_cdata () =
  let e = parse "<a><![CDATA[<not-parsed> & raw]]></a>" in
  check string_t "cdata" "<not-parsed> & raw" (Xml_types.text_content e)

let test_parse_comment_dropped_from_text () =
  let e = parse "<a>x<!-- hidden -->y</a>" in
  check string_t "text skips comments" "xy" (Xml_types.text_content e)

let test_parse_pi () =
  let e = parse "<a><?target data?></a>" in
  match e.Xml_types.children with
  | [ Xml_types.Pi (t, c) ] ->
    check string_t "target" "target" t;
    check string_t "content" "data" c
  | _ -> Alcotest.fail "expected a PI child"

let test_parse_document () =
  let d =
    Xml_parser.parse_document_exn
      {|<?xml version="1.0" encoding="UTF-8"?><!DOCTYPE r><r><x/></r>|}
  in
  check string_t "root" "r" d.Xml_types.root.Xml_types.tag;
  check (Alcotest.option string_t) "decl version" (Some "1.0")
    (List.assoc_opt "version" d.Xml_types.decl)

let test_parse_errors () =
  let fails s =
    match Xml_parser.parse_element s with
    | Ok _ -> Alcotest.failf "expected failure on %S" s
    | Error _ -> ()
  in
  fails "<a>";
  fails "<a></b>";
  fails "<a><b></a></b>";
  fails "<a x=1/>";
  fails "<a>&unknown;</a>";
  fails "<a/><b/>";
  fails ""

let test_mismatch_error_message () =
  match Xml_parser.parse_element "<a><b></c></a>" with
  | Error e ->
    check bool_t "mentions both tags"
      true
      (let s = Xml_parser.error_to_string e in
       let has sub =
         let n = String.length sub and m = String.length s in
         let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
         go 0
       in
       has "c" && has "b")
  | Ok _ -> Alcotest.fail "expected mismatch error"

(* ------------------------------------------------------------------ *)
(* Printer round trip                                                  *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_manual () =
  let cases =
    [
      "<a/>";
      {|<a x="1"/>|};
      "<a>text</a>";
      "<a><b/><c>t</c></a>";
      {|<a x="&lt;&amp;&quot;">&lt;&amp;&gt;</a>|};
    ]
  in
  List.iter
    (fun s ->
      let e = parse s in
      let s' = Xml_print.element_to_string e in
      let e' = parse s' in
      check bool_t ("roundtrip " ^ s) true (Xml_types.equal_element e e'))
    cases

(* Generator of random XML trees for property tests. *)
let gen_tree =
  let open QCheck2.Gen in
  let tag = oneofl [ "a"; "b"; "c"; "item"; "row" ] in
  let attr_name = oneofl [ "id"; "k"; "name" ] in
  let text_frag =
    oneofl [ "hello"; "x < y"; "a&b"; "\"quoted\""; "multi word"; "42" ]
  in
  let rec tree depth =
    if depth = 0 then map (fun t -> Xml_types.text t) text_frag
    else
      frequency
        [
          (2, map (fun t -> Xml_types.text t) text_frag);
          ( 3,
            map3
              (fun tag attrs kids -> Xml_types.el ~attrs tag kids)
              tag
              (small_list (pair attr_name text_frag)
              |> map (fun l ->
                     (* dedupe attr names *)
                     let seen = Hashtbl.create 4 in
                     List.filter
                       (fun (n, _) ->
                         if Hashtbl.mem seen n then false
                         else begin
                           Hashtbl.add seen n ();
                           true
                         end)
                       l))
              (list_size (int_bound 3) (tree (depth - 1))) );
        ]
  in
  QCheck2.Gen.map
    (fun kids -> Xml_types.elem "root" kids)
    (QCheck2.Gen.list_size (QCheck2.Gen.int_bound 4) (tree 3))

let prop_print_parse_roundtrip =
  QCheck2.Test.make ~name:"xml print/parse roundtrip" ~count:200 gen_tree (fun e ->
      (* Adjacent text nodes merge on reparse, so normalize first by
         printing and reparsing once, then compare the fixpoint. *)
      let once = Xml_parser.parse_element_exn (Xml_print.element_to_string e) in
      let twice = Xml_parser.parse_element_exn (Xml_print.element_to_string once) in
      Xml_types.equal_element once twice)

let prop_count_nodes_positive =
  QCheck2.Test.make ~name:"count_nodes >= 1" ~count:100 gen_tree (fun e ->
      Xml_types.count_nodes e >= 1)

(* ------------------------------------------------------------------ *)
(* Cursor                                                              *)
(* ------------------------------------------------------------------ *)

let sample () =
  parse "<lib><shelf id=\"1\"><book>A</book><book>B</book></shelf><shelf id=\"2\"><book>C</book></shelf></lib>"

let test_cursor_children () =
  let c = Xml_cursor.of_root (sample ()) in
  check int_t "two shelves" 2 (List.length (Xml_cursor.children c))

let test_cursor_parent () =
  let c = Xml_cursor.of_root (sample ()) in
  let shelf = List.hd (Xml_cursor.children c) in
  match Xml_cursor.parent shelf with
  | Some p -> check string_t "parent tag" "lib" (Xml_cursor.element p).Xml_types.tag
  | None -> Alcotest.fail "expected parent"

let test_cursor_siblings () =
  let c = Xml_cursor.of_root (sample ()) in
  let shelf1 = List.hd (Xml_cursor.children c) in
  (match Xml_cursor.next_sibling shelf1 with
  | Some s ->
    check (Alcotest.option string_t) "shelf 2" (Some "2")
      (Xml_types.attr (Xml_cursor.element s) "id")
  | None -> Alcotest.fail "expected next sibling");
  check bool_t "no prev sibling" true (Xml_cursor.prev_sibling shelf1 = None)

let test_cursor_descendants_order () =
  let c = Xml_cursor.of_root (sample ()) in
  let tags =
    List.map (fun d -> (Xml_cursor.element d).Xml_types.tag) (Xml_cursor.descendants c)
  in
  check (Alcotest.list string_t) "preorder"
    [ "shelf"; "book"; "book"; "shelf"; "book" ]
    tags

let test_cursor_document_order () =
  let c = Xml_cursor.of_root (sample ()) in
  let ds = Xml_cursor.descendants c in
  let sorted = List.sort Xml_cursor.compare_order ds in
  check bool_t "already in document order" true
    (List.for_all2 (fun a b -> Xml_cursor.compare_order a b = 0) ds sorted)

let test_cursor_root () =
  let c = Xml_cursor.of_root (sample ()) in
  let deep = List.nth (Xml_cursor.descendants c) 1 in
  check string_t "root from deep" "lib" (Xml_cursor.element (Xml_cursor.root deep)).Xml_types.tag

(* ------------------------------------------------------------------ *)
(* Path language                                                       *)
(* ------------------------------------------------------------------ *)

let select path root = Xml_path.select (Xml_path.parse_exn path) root

let test_path_child () =
  check int_t "shelves" 2 (List.length (select "/shelf" (sample ())))

let test_path_descendant () =
  check int_t "books" 3 (List.length (select "//book" (sample ())))

let test_path_attr_pred () =
  let shelves = select "/shelf[@id='2']" (sample ()) in
  check int_t "one shelf" 1 (List.length shelves);
  check int_t "one book inside" 1 (List.length (Xml_types.children_named (List.hd shelves) "book"))

let test_path_text_pred () =
  let books = select "//book[text()='B']" (sample ()) in
  check int_t "one book" 1 (List.length books)

let test_path_position () =
  let books = select "/shelf/book[position()=2]" (sample ()) in
  check int_t "second book of first shelf" 1 (List.length books);
  check string_t "is B" "B" (Xml_types.text_content (List.hd books))

let test_path_parent_axis () =
  let shelves = select "//book/.." (sample ()) in
  check int_t "two distinct shelves (dedup)" 2 (List.length shelves)

let test_path_wildcard () =
  check int_t "all children of root" 2 (List.length (select "/*" (sample ())))

let test_path_select_strings () =
  let p = Xml_path.parse_exn "//book" in
  check (Alcotest.list string_t) "book texts" [ "A"; "B"; "C" ]
    (Xml_path.select_strings p (sample ()))

let test_path_attr_step () =
  let p = Xml_path.parse_exn "/shelf/@id" in
  check (Alcotest.list string_t) "ids" [ "1"; "2" ] (Xml_path.select_strings p (sample ()))

let test_path_axis_syntax () =
  check int_t "explicit child axis" 3
    (List.length (select "descendant::book" (sample ())));
  check int_t "following-sibling" 1
    (List.length (select "/shelf[position()=1]/following-sibling::shelf" (sample ())))

let test_path_numeric_compare () =
  let root = parse "<r><p><price>5</price></p><p><price>12</price></p></r>" in
  check int_t "price > 10" 1 (List.length (select "/p[price>'10']" root))

let test_path_parse_errors () =
  List.iter
    (fun s ->
      match Xml_path.parse s with
      | Ok _ -> Alcotest.failf "expected parse failure for %S" s
      | Error _ -> ())
    [ ""; "/"; "//"; "/a[" ; "/a[@]"; "/a[position()='x']"; "/unknown::a" ]

let test_path_roundtrip () =
  List.iter
    (fun s ->
      let p = Xml_path.parse_exn s in
      let p' = Xml_path.parse_exn (Xml_path.to_string p) in
      check string_t ("path roundtrip " ^ s) (Xml_path.to_string p) (Xml_path.to_string p'))
    [ "/a/b"; "//x[@id='3']"; "a/b[text()='t']/.."; "/s/book[position()=2]" ]

let test_path_matches () =
  check bool_t "matches" true (Xml_path.matches (Xml_path.parse_exn "//book") (sample ()));
  check bool_t "no match" false (Xml_path.matches (Xml_path.parse_exn "//dvd") (sample ()))

(* Every <b> below is reachable from several <a> ancestors; the result
   must still carry each node once, in document order — the set
   semantics the structural index relies on (see Idx_guide). *)
let test_path_descendant_set_semantics () =
  let e = parse "<r><a><a><b>1</b><a><b>2</b></a></a><b>3</b></a><b>4</b></r>" in
  let got = List.map Xml_types.text_content (select "//a//b" e) in
  check (Alcotest.list string_t) "each once, document order" [ "1"; "2"; "3" ] got;
  let got = List.map Xml_types.text_content (select "//a/descendant-or-self::b" e) in
  check (Alcotest.list string_t) "descendant-or-self dedups too" [ "1"; "2"; "3" ] got

let test_path_axes_at_edges () =
  let e = parse "<r><only><c>x</c></only></r>" in
  (* Upward axes off the root: nothing above, no crash, no phantom. *)
  check int_t "parent of root" 0 (List.length (select "/.." e));
  check int_t "ancestors of root" 0 (List.length (select "/ancestor::*" e));
  (* Sibling axes on an only child. *)
  check int_t "following-sibling of only child" 0
    (List.length (select "/only/following-sibling::*" e));
  check int_t "preceding-sibling of only child" 0
    (List.length (select "/only/preceding-sibling::*" e));
  (* Ancestors come back deduplicated and each exactly once. *)
  let anc = select "//c/ancestor::*" e in
  check int_t "two ancestors of c" 2 (List.length anc)

let test_path_position_under_descendant () =
  let e = parse "<r><s><b>1</b><b>2</b></s><s><b>3</b></s></r>" in
  (* position() is per expansion context (the node set one step yields
     from one input node), not global: each <s> restarts the count. *)
  let first = List.map Xml_types.text_content (select "//s/b[position()=1]" e) in
  check (Alcotest.list string_t) "first b of each s" [ "1"; "3" ] first;
  let second = List.map Xml_types.text_content (select "//s/b[position()=2]" e) in
  check (Alcotest.list string_t) "second b where present" [ "2" ] second

(* ------------------------------------------------------------------ *)
(* Pretty printer                                                      *)
(* ------------------------------------------------------------------ *)

let test_pretty_parses_back () =
  let e = sample () in
  let pretty = Xml_print.element_to_pretty_string e in
  let e' = parse pretty in
  (* Whitespace-only text may be introduced; compare structure via paths. *)
  check int_t "same book count" 3 (List.length (select "//book" e'))

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_print_parse_roundtrip; prop_count_nodes_positive ] in
  Alcotest.run "xml"
    [
      ( "parser",
        [
          Alcotest.test_case "simple element" `Quick test_parse_simple;
          Alcotest.test_case "attributes" `Quick test_parse_attrs;
          Alcotest.test_case "nesting" `Quick test_parse_nested;
          Alcotest.test_case "entities" `Quick test_parse_entities;
          Alcotest.test_case "numeric entities" `Quick test_parse_numeric_entities;
          Alcotest.test_case "cdata" `Quick test_parse_cdata;
          Alcotest.test_case "comments" `Quick test_parse_comment_dropped_from_text;
          Alcotest.test_case "processing instruction" `Quick test_parse_pi;
          Alcotest.test_case "document with prolog" `Quick test_parse_document;
          Alcotest.test_case "malformed inputs" `Quick test_parse_errors;
          Alcotest.test_case "mismatch error message" `Quick test_mismatch_error_message;
        ] );
      ( "printer",
        [
          Alcotest.test_case "manual roundtrips" `Quick test_roundtrip_manual;
          Alcotest.test_case "pretty output reparses" `Quick test_pretty_parses_back;
        ]
        @ qsuite );
      ( "cursor",
        [
          Alcotest.test_case "children" `Quick test_cursor_children;
          Alcotest.test_case "parent" `Quick test_cursor_parent;
          Alcotest.test_case "siblings" `Quick test_cursor_siblings;
          Alcotest.test_case "descendants preorder" `Quick test_cursor_descendants_order;
          Alcotest.test_case "document order" `Quick test_cursor_document_order;
          Alcotest.test_case "root" `Quick test_cursor_root;
        ] );
      ( "path",
        [
          Alcotest.test_case "child step" `Quick test_path_child;
          Alcotest.test_case "descendant step" `Quick test_path_descendant;
          Alcotest.test_case "attribute predicate" `Quick test_path_attr_pred;
          Alcotest.test_case "text predicate" `Quick test_path_text_pred;
          Alcotest.test_case "position predicate" `Quick test_path_position;
          Alcotest.test_case "parent axis" `Quick test_path_parent_axis;
          Alcotest.test_case "wildcard" `Quick test_path_wildcard;
          Alcotest.test_case "select strings" `Quick test_path_select_strings;
          Alcotest.test_case "attribute step" `Quick test_path_attr_step;
          Alcotest.test_case "axis syntax" `Quick test_path_axis_syntax;
          Alcotest.test_case "numeric comparison" `Quick test_path_numeric_compare;
          Alcotest.test_case "parse errors" `Quick test_path_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_path_roundtrip;
          Alcotest.test_case "matches" `Quick test_path_matches;
          Alcotest.test_case "descendant set semantics" `Quick
            test_path_descendant_set_semantics;
          Alcotest.test_case "axes at tree edges" `Quick test_path_axes_at_edges;
          Alcotest.test_case "position under descendant" `Quick
            test_path_position_under_descendant;
        ] );
    ]
