(* Tests for the observability subsystem: the metrics registry, the
   trace sink, the shared report formatting, the observed-cardinality
   store, and the end-to-end cost-model feedback loop through
   Med_exec.run_analyzed. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let string_t = Alcotest.string

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Obs_metrics                                                         *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  Obs_metrics.reset_all ();
  let c = Obs_metrics.counter "test.hits" in
  check bool_t "same handle" true (Obs_metrics.counter "test.hits" == c);
  Obs_metrics.inc c;
  Obs_metrics.inc ~by:4 c;
  check int_t "value" 5 (Obs_metrics.value c);
  check bool_t "lookup by name" true
    (Obs_metrics.counter_value "test.hits" = Some 5);
  check bool_t "unknown name" true (Obs_metrics.counter_value "test.nope" = None)

let test_gauges_histograms () =
  Obs_metrics.reset_all ();
  let g = Obs_metrics.gauge "test.depth" in
  Obs_metrics.set_gauge g 3.5;
  check bool_t "gauge value" true (Obs_metrics.gauge_value g = 3.5);
  let h = Obs_metrics.histogram ~buckets:[ 10.0; 100.0 ] "test.lat" in
  List.iter (Obs_metrics.observe h) [ 4.0; 40.0; 400.0 ];
  check int_t "histogram count" 3 (Obs_metrics.histogram_count h);
  check bool_t "histogram sum" true (Obs_metrics.histogram_sum h = 444.0);
  (match Obs_metrics.histogram_buckets h with
  | [ (b1, c1); (b2, c2); (b3, c3) ] ->
    check bool_t "bucket bounds" true (b1 = 10.0 && b2 = 100.0 && b3 = infinity);
    check int_t "le 10" 1 c1;
    check int_t "le 100" 1 c2;
    check int_t "overflow" 1 c3
  | _ -> Alcotest.fail "expected three buckets")

let test_kind_clash_and_reset () =
  Obs_metrics.reset_all ();
  let c = Obs_metrics.counter "test.kind" in
  Obs_metrics.inc c;
  check bool_t "kind clash rejected" true
    (try
       ignore (Obs_metrics.gauge "test.kind");
       false
     with Invalid_argument _ -> true);
  Obs_metrics.reset_all ();
  (* Handles survive a reset and start from zero again. *)
  check int_t "zeroed in place" 0 (Obs_metrics.value c);
  Obs_metrics.inc c;
  check int_t "still usable" 1 (Obs_metrics.value c)

(* ------------------------------------------------------------------ *)
(* Obs_trace / Obs_span                                                *)
(* ------------------------------------------------------------------ *)

let test_trace_disabled_is_null () =
  Obs_trace.set_enabled false;
  Obs_trace.clear ();
  let got =
    Obs_trace.with_span "outer" (fun sp ->
        check bool_t "null span" true (Obs_span.is_null sp);
        Obs_span.set sp "k" "v";
        (* no-op *)
        17)
  in
  check int_t "value passes through" 17 got;
  check int_t "nothing recorded" 0 (List.length (Obs_trace.roots ()))

let test_trace_nesting () =
  Obs_trace.set_enabled true;
  Obs_trace.clear ();
  let got =
    Obs_trace.with_span "query" (fun q ->
        Obs_span.set q "text" "demo";
        let first =
          Obs_trace.with_span "access" (fun a ->
              Obs_span.set_int a "rows" 3;
              1)
        in
        let second = Obs_trace.with_span "access" (fun _ -> 2) in
        first + second)
  in
  Obs_trace.set_enabled false;
  check int_t "body result" 3 got;
  match Obs_trace.roots () with
  | [ root ] ->
    check string_t "root name" "query" (Obs_span.name root);
    check bool_t "root attr" true (Obs_span.attrs root = [ ("text", "demo") ]);
    let kids = Obs_span.children root in
    check int_t "two children" 2 (List.length kids);
    check bool_t "child attr" true
      (Obs_span.attrs (List.hd kids) = [ ("rows", "3") ])
  | roots -> Alcotest.fail (Printf.sprintf "expected 1 root, got %d" (List.length roots))

let test_trace_exception_recorded () =
  Obs_trace.set_enabled true;
  Obs_trace.clear ();
  (try Obs_trace.with_span "boom" (fun _ -> failwith "nope") with Failure _ -> ());
  Obs_trace.set_enabled false;
  match Obs_trace.roots () with
  | [ root ] ->
    check bool_t "error attr" true
      (List.mem_assoc "error" (Obs_span.attrs root))
  | _ -> Alcotest.fail "expected the failed span as a root"

(* ------------------------------------------------------------------ *)
(* Obs_report                                                          *)
(* ------------------------------------------------------------------ *)

let test_report_cells () =
  check string_t "cells"
    "calls=3 virtual_ms=14.00"
    (Obs_report.cells [ Obs_report.int_cell "calls" 3; Obs_report.ms_cell "virtual_ms" 14.0 ])

(* Net_sim's legacy one-line summary must keep its exact shape now that
   it renders through the shared Obs_report path. *)
let test_netsim_shares_format () =
  let src =
    Csv_source.make ~name:"little" [ ("rows", "a,b\n1,2\n3,4\n") ]
  in
  let wrapped, stats =
    Net_sim.wrap { Net_sim.latency_ms = 7.0; per_tuple_ms = 0.0; availability = 1.0 } src
  in
  ignore (wrapped.Source.documents "rows");
  let line = Net_sim.stats_to_string stats in
  check bool_t "legacy shape" true
    (contains line "calls=1 rejected=0 failed=0 tuples=")

(* ------------------------------------------------------------------ *)
(* Obs_feedback                                                        *)
(* ------------------------------------------------------------------ *)

let test_feedback_store () =
  let fb = Obs_feedback.create () in
  check bool_t "empty" true (Obs_feedback.observed fb "k" = None);
  Obs_feedback.record fb "k" 10;
  Obs_feedback.record fb "k" 42;
  check bool_t "last value wins" true (Obs_feedback.observed fb "k" = Some 42.0);
  check int_t "samples" 2 (Obs_feedback.samples fb "k");
  check int_t "size" 1 (Obs_feedback.size fb);
  Obs_feedback.reset fb;
  check int_t "reset" 0 (Obs_feedback.size fb)

(* ------------------------------------------------------------------ *)
(* The feedback loop, end to end                                       *)
(* ------------------------------------------------------------------ *)

let make_catalog () =
  let db = Rel_db.create ~name:"crm" () in
  List.iter
    (fun s -> ignore (Rel_db.exec db s))
    [
      "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT)";
      "INSERT INTO customers VALUES (1, 'Acme'), (2, 'Globex'), (3, 'Initech')";
    ];
  let cat = Med_catalog.create () in
  Med_catalog.register_source cat (Rel_source.make db);
  cat

let feedback_query =
  Xq_parser.parse_exn
    {|WHERE <row><name>$n</name></row> IN "crm.customers" CONSTRUCT <c>$n</c>|}

let test_run_analyzed_feedback () =
  let cat = make_catalog () in
  let a1 = Med_exec.run_analyzed cat feedback_query in
  check int_t "three answers" 3 (List.length a1.Med_exec.analyzed_result.Med_exec.trees);
  (match a1.Med_exec.analyzed_accesses with
  | [ st ] ->
    check bool_t "first run uses the default estimate" true
      (st.Med_exec.stat_est_rows = Alg_cost.default_scan_rows);
    check int_t "observed rows" 3 st.Med_exec.stat_rows;
    check int_t "one call" 1 st.Med_exec.stat_calls
  | _ -> Alcotest.fail "expected exactly one access");
  (* The run recorded its cardinality: the next one plans with it. *)
  let a2 = Med_exec.run_analyzed cat feedback_query in
  (match a2.Med_exec.analyzed_accesses with
  | [ st ] ->
    check bool_t "second run uses the observed estimate" true
      (st.Med_exec.stat_est_rows = 3.0)
  | _ -> Alcotest.fail "expected exactly one access");
  let report = Med_exec.analysis_to_string a2 in
  check bool_t "report shows actuals" true (contains report "actual 3 rows");
  check bool_t "report shows the access" true (contains report "SQL @crm")

let test_analysis_report_shape () =
  let cat = make_catalog () in
  let a = Med_exec.run_analyzed cat feedback_query in
  let report = Med_exec.analysis_to_string a in
  check bool_t "has operator estimates" true (contains report "(est ");
  check bool_t "has access table" true (contains report "accesses:");
  check bool_t "has per-access cells" true (contains report "calls=1 rows=3");
  check bool_t "has total footer" true (contains report "-- 3 rows in")

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "gauges + histograms" `Quick test_gauges_histograms;
          Alcotest.test_case "kind clash + reset" `Quick test_kind_clash_and_reset;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled = null span" `Quick test_trace_disabled_is_null;
          Alcotest.test_case "nesting" `Quick test_trace_nesting;
          Alcotest.test_case "exception recorded" `Quick test_trace_exception_recorded;
        ] );
      ( "report",
        [
          Alcotest.test_case "cells" `Quick test_report_cells;
          Alcotest.test_case "net_sim shares the format" `Quick test_netsim_shares_format;
        ] );
      ( "feedback",
        [
          Alcotest.test_case "store" `Quick test_feedback_store;
          Alcotest.test_case "run_analyzed feeds the planner" `Quick test_run_analyzed_feedback;
          Alcotest.test_case "analysis report shape" `Quick test_analysis_report_shape;
        ] );
    ]
