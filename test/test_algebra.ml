(* Tests for the physical algebra: environments, expressions, and every
   operator of the plan language, including the algebraic laws the
   optimizer relies on. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let string_t = Alcotest.string

let value_t = Alcotest.testable (fun ppf v -> Value.pp ppf v) Value.equal

(* A fixed source function over small in-memory relations. *)
let people =
  [
    [ ("id", Value.Int 1); ("name", Value.String "Ann"); ("dept", Value.Int 10) ];
    [ ("id", Value.Int 2); ("name", Value.String "Bob"); ("dept", Value.Int 10) ];
    [ ("id", Value.Int 3); ("name", Value.String "Cid"); ("dept", Value.Int 20) ];
    [ ("id", Value.Int 4); ("name", Value.String "Dee"); ("dept", Value.Null) ];
  ]

let depts =
  [
    [ ("did", Value.Int 10); ("dname", Value.String "eng") ];
    [ ("did", Value.Int 20); ("dname", Value.String "sales") ];
    [ ("did", Value.Int 30); ("dname", Value.String "empty") ];
  ]

let xml_doc =
  Dtree.of_xml_element
    (Xml_parser.parse_element_exn
       "<bib><book year=\"1994\"><title>TCP</title><author>Stevens</author>\
        <author>Wright</author></book>\
        <book year=\"2000\"><title>DB</title><author>Ullman</author></book></bib>")

let sources name binding : Alg_env.t Seq.t =
  let rows =
    match name with
    | "people" -> people
    | "depts" -> depts
    | "bib" ->
      [ [] ] |> ignore;
      []
    | _ -> raise (Alg_exec.Source_unavailable name)
  in
  if name = "bib" then Seq.return (Alg_env.of_bindings [ (binding, xml_doc) ])
  else
    List.to_seq
      (List.map (fun fields -> Alg_env.of_bindings [ (binding, Dtree.of_tuple binding (Tuple.make fields)) ]) rows)

let run plan = Alg_exec.run_list sources plan

let open_scan name var = Alg_plan.Scan { source = name; binding = var }

(* $p/id etc. *)
let child var label = Alg_expr.Child (Alg_expr.Var var, label)

(* ------------------------------------------------------------------ *)
(* Env                                                                 *)
(* ------------------------------------------------------------------ *)

let test_env_basics () =
  let env = Alg_env.of_bindings [ ("x", Dtree.atom (Value.Int 1)) ] in
  check (Alcotest.option bool_t) "mem" (Some true) (Some (Alg_env.mem env "x"));
  check value_t "value_of bound" (Value.Int 1) (Alg_env.value_of env "x");
  check value_t "value_of unbound is null" Value.Null (Alg_env.value_of env "nope");
  let env2 = Alg_env.bind_value env "y" (Value.String "s") in
  check int_t "arity" 2 (Alg_env.arity env2);
  let p = Alg_env.project env2 [ "y"; "z" ] in
  check value_t "project pads null" Value.Null (Alg_env.value_of p "z")

let test_env_tuple_roundtrip () =
  let tup = Tuple.make [ ("a", Value.Int 1); ("b", Value.String "x") ] in
  let env = Alg_env.of_tuple tup in
  check bool_t "roundtrip" true (Tuple.equal tup (Alg_env.to_tuple env))

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let book_env =
  Alg_env.of_bindings
    [ ("b", List.nth (Dtree.kids xml_doc) 0) ]

let test_expr_tree_access () =
  check value_t "child text" (Value.String "TCP") (Alg_expr.eval book_env (child "b" "title"));
  check value_t "attr" (Value.Int 1994)
    (Alg_expr.eval book_env (Alg_expr.Attr (Alg_expr.Var "b", "year")));
  check value_t "label" (Value.String "book")
    (Alg_expr.eval book_env (Alg_expr.Label (Alg_expr.Var "b")));
  check value_t "text concatenates" (Value.String "TCPStevensWright")
    (Alg_expr.eval book_env (Alg_expr.Text (Alg_expr.Var "b")));
  check value_t "missing child is null" Value.Null
    (Alg_expr.eval book_env (child "b" "publisher"))

let test_expr_three_valued () =
  let env = Alg_env.of_bindings [ ("x", Dtree.atom Value.Null) ] in
  let open Alg_expr in
  check value_t "null = 1 unknown" Value.Null (eval env (v "x" =% ci 1));
  check bool_t "pred drops unknown" false (eval_pred env (v "x" =% ci 1));
  check value_t "is_null" (Value.Bool true) (eval env (Is_null (v "x")))

let test_expr_free_vars () =
  let open Alg_expr in
  let e = (v "a" =% ci 1) &&% (Child (v "b", "x") <% v "a") in
  check (Alcotest.list string_t) "free vars" [ "a"; "b" ] (free_vars e)

(* ------------------------------------------------------------------ *)
(* Operators                                                           *)
(* ------------------------------------------------------------------ *)

let test_scan_select () =
  let open Alg_expr in
  let plan = Alg_plan.Select (open_scan "people" "p", child "p" "dept" =% ci 10) in
  check int_t "two in dept 10" 2 (List.length (run plan))

let test_project_extend () =
  let plan =
    Alg_plan.Project
      (Alg_plan.Extend (open_scan "people" "p", "nm", child "p" "name"), [ "nm" ])
  in
  let envs = run plan in
  check int_t "four rows" 4 (List.length envs);
  check value_t "name extracted" (Value.String "Ann") (Alg_env.value_of (List.hd envs) "nm")

let join_plans () =
  let lk = child "p" "dept" and rk = child "d" "did" in
  let left = open_scan "people" "p" and right = open_scan "depts" "d" in
  let open Alg_expr in
  [
    ("nl", Alg_plan.Nl_join { left; right; pred = Some (lk =% rk) });
    ("hash", Alg_plan.Hash_join { left; right; left_key = lk; right_key = rk; residual = None });
    ("merge", Alg_plan.Merge_join { left; right; left_key = lk; right_key = rk });
  ]

let test_join_algorithms_agree () =
  let results =
    List.map
      (fun (name, plan) ->
        let envs = run plan in
        let tuples =
          List.map (fun e -> Tuple.to_string (Alg_env.to_tuple (Alg_env.project e [ "p"; "d" ]))) envs
        in
        (name, List.sort String.compare tuples))
      (join_plans ())
  in
  match results with
  | [ (_, nl); (_, hash); (_, merge) ] ->
    check int_t "three matches (null dept drops)" 3 (List.length nl);
    check bool_t "hash = nl" true (hash = nl);
    check bool_t "merge = nl" true (merge = nl)
  | _ -> assert false

let test_dep_join () =
  let expand env =
    let dept = Alg_env.value_of env "dept_key" in
    ignore dept;
    Seq.return (Alg_env.of_bindings [ ("extra", Dtree.atom (Value.Int 99)) ])
  in
  let plan =
    Alg_plan.Dep_join
      { left = open_scan "people" "p"; label = "expand-per-row"; expand }
  in
  let envs = run plan in
  check int_t "one expansion per row" 4 (List.length envs);
  check value_t "bound" (Value.Int 99) (Alg_env.value_of (List.hd envs) "extra")

let test_sort_distinct_limit () =
  let key = child "p" "name" in
  let plan = Alg_plan.Sort (open_scan "people" "p", [ { Alg_plan.sort_key = key; ascending = false } ]) in
  let envs = run plan in
  check value_t "desc first" (Value.String "Dee") (Alg_expr.eval (List.hd envs) key);
  let plan = Alg_plan.Limit (plan, 2) in
  check int_t "limit" 2 (List.length (run plan));
  let dup_plan =
    Alg_plan.Distinct
      (Alg_plan.Project
         (Alg_plan.Extend (open_scan "people" "p", "d", child "p" "dept"), [ "d" ]))
  in
  check int_t "distinct depts (incl null)" 3 (List.length (run dup_plan))

let test_group_aggregates () =
  let plan =
    Alg_plan.Group
      {
        input = open_scan "people" "p";
        keys = [ ("dept", child "p" "dept") ];
        aggs =
          [
            ("n", Alg_plan.A_count);
            ("min_name", Alg_plan.A_min (child "p" "name"));
            ("ids", Alg_plan.A_collect (Alg_expr.Child (Alg_expr.Var "p", "id")));
          ];
      }
  in
  let envs = run plan in
  check int_t "three groups" 3 (List.length envs);
  let dept10 = List.find (fun e -> Alg_env.value_of e "dept" = Value.Int 10) envs in
  check value_t "count" (Value.Int 2) (Alg_env.value_of dept10 "n");
  check value_t "min" (Value.String "Ann") (Alg_env.value_of dept10 "min_name");
  match Alg_env.get dept10 "ids" with
  | Some collected -> check int_t "collected 2 ids" 2 (List.length (Dtree.kids collected))
  | None -> Alcotest.fail "expected collection"

let test_union_outer_union () =
  let a = Alg_plan.Extend (Alg_plan.Const_envs [ Alg_env.empty ], "x", Alg_expr.ci 1) in
  let b = Alg_plan.Extend (Alg_plan.Const_envs [ Alg_env.empty ], "y", Alg_expr.ci 2) in
  check int_t "union" 2 (List.length (run (Alg_plan.Union (a, b))));
  let envs = run (Alg_plan.Outer_union (a, b)) in
  check int_t "outer union rows" 2 (List.length envs);
  List.iter
    (fun e ->
      check (Alcotest.list string_t) "padded schema" [ "x"; "y" ] (Alg_env.vars e))
    envs;
  check value_t "missing y is null" Value.Null (Alg_env.value_of (List.hd envs) "y")

let test_navigate () =
  let path = Xml_path.parse_exn "//author" in
  let plan =
    Alg_plan.Navigate
      { input = Alg_plan.Const_envs [ Alg_env.of_bindings [ ("doc", xml_doc) ] ];
        var = "doc"; path; out = "a" }
  in
  let envs = run plan in
  check int_t "three authors" 3 (List.length envs);
  check value_t "first author" (Value.String "Stevens")
    (Alg_expr.eval (List.hd envs) (Alg_expr.Text (Alg_expr.Var "a")))

let test_unnest () =
  let plan =
    Alg_plan.Unnest
      { input = Alg_plan.Const_envs [ Alg_env.of_bindings [ ("doc", xml_doc) ] ];
        var = "doc"; label = Some "book"; out = "b" }
  in
  check int_t "two books" 2 (List.length (run plan))

let test_construct () =
  let template =
    Alg_plan.T_node
      ( "person",
        [ ("id", child "p" "id") ],
        [ Alg_plan.T_node ("who", [], [ Alg_plan.T_value (child "p" "name") ]) ] )
  in
  let plan = Alg_plan.Construct { input = open_scan "people" "p"; binding = "out"; template } in
  let envs = run plan in
  check int_t "four built" 4 (List.length envs);
  match Alg_env.get (List.hd envs) "out" with
  | Some tree ->
    let xml = Xml_print.element_to_string (Dtree.to_xml_element tree) in
    check string_t "rendered" "<person id=\"1\"><who>Ann</who></person>" xml
  | None -> Alcotest.fail "expected constructed tree"

let test_construct_splice () =
  let collected =
    Dtree.node "collection" [ Dtree.atom (Value.Int 1); Dtree.atom (Value.Int 2) ]
  in
  let env = Alg_env.of_bindings [ ("c", collected) ] in
  let template = Alg_plan.T_node ("all", [], [ Alg_plan.T_splice (Alg_expr.Var "c") ]) in
  let built = Alg_exec.build_template env template in
  check int_t "spliced kids" 2 (List.length (Dtree.kids built))

let test_partial_results () =
  let plan =
    Alg_plan.Outer_union (open_scan "people" "p", open_scan "gone_source" "p")
  in
  (* strict mode fails *)
  (try
     ignore (run plan);
     Alcotest.fail "expected Source_unavailable"
   with Alg_exec.Source_unavailable _ -> ());
  (* partial mode answers with annotation *)
  let envs, skipped = Alg_exec.run_partial sources plan in
  check int_t "partial rows" 4 (List.length envs);
  check (Alcotest.list string_t) "skipped sources" [ "gone_source" ] skipped

let test_explain_mentions_operators () =
  let _, plan = List.nth (join_plans ()) 1 in
  let text = Alg_plan.explain (Alg_plan.Select (plan, Alg_expr.ci 1)) in
  let has needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  check bool_t "has SELECT" true (has "SELECT");
  check bool_t "has HASH-JOIN" true (has "HASH-JOIN");
  check bool_t "has SCAN" true (has "SCAN people")

let test_free_sources_output_vars () =
  let _, plan = List.nth (join_plans ()) 2 in
  check (Alcotest.list string_t) "sources" [ "people"; "depts" ] (Alg_plan.free_sources plan);
  check (Alcotest.list string_t) "vars" [ "p"; "d" ] (Alg_plan.output_vars plan)

let test_cost_estimates () =
  let source_rows = function
    | "people" -> 1000.0
    | "depts" -> 50.0
    | _ -> 100.0
  in
  let scan = open_scan "people" "p" in
  let open Alg_expr in
  let filtered = Alg_plan.Select (scan, child "p" "dept" =% ci 10) in
  let e_scan = Alg_cost.estimate ~source_rows scan in
  let e_filter = Alg_cost.estimate ~source_rows filtered in
  check bool_t "scan rows" true (e_scan.Alg_cost.rows = 1000.0);
  check bool_t "selection reduces rows" true (e_filter.Alg_cost.rows < e_scan.Alg_cost.rows);
  check bool_t "selection adds cost" true (e_filter.Alg_cost.cost > e_scan.Alg_cost.cost);
  (* hash join beats nested loop in estimated cost on equal inputs *)
  let lk = child "p" "dept" and rk = child "d" "did" in
  let right = open_scan "depts" "d" in
  let nl = Alg_plan.Nl_join { left = scan; right; pred = Some (lk =% rk) } in
  let hash = Alg_plan.Hash_join { left = scan; right; left_key = lk; right_key = rk; residual = None } in
  let e_nl = Alg_cost.estimate ~source_rows nl in
  let e_hash = Alg_cost.estimate ~source_rows hash in
  check bool_t "hash cheaper than nested loop" true (e_hash.Alg_cost.cost < e_nl.Alg_cost.cost);
  let limited = Alg_plan.Limit (scan, 10) in
  check bool_t "limit caps rows" true ((Alg_cost.estimate ~source_rows limited).Alg_cost.rows = 10.0);
  let annotated = Alg_cost.annotate ~source_rows hash in
  check bool_t "annotation mentions estimate" true
    (let needle = "estimated:" in
     let n = String.length needle and m = String.length annotated in
     let rec go i = i + n <= m && (String.sub annotated i n = needle || go (i + 1)) in
     go 0)

(* ------------------------------------------------------------------ *)
(* Instrumented execution and EXPLAIN ANALYZE                          *)
(* ------------------------------------------------------------------ *)

let contains needle hay =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_annotate_per_line () =
  let source_rows = function "people" -> 1000.0 | _ -> 50.0 in
  let open Alg_expr in
  let plan = Alg_plan.Select (open_scan "people" "p", child "p" "dept" =% ci 10) in
  let annotated = Alg_cost.annotate ~source_rows plan in
  let op_lines =
    List.filter
      (fun l -> contains "SCAN" l || contains "SELECT" l)
      (String.split_on_char '\n' annotated)
  in
  check int_t "two operator lines" 2 (List.length op_lines);
  List.iter
    (fun l -> check bool_t "per-line estimate" true (contains "(est " l))
    op_lines;
  check bool_t "keeps total footer" true (contains "estimated:" annotated)

let test_run_instrumented () =
  let open Alg_expr in
  let scan = open_scan "people" "p" in
  let plan = Alg_plan.Select (scan, child "p" "dept" =% ci 10) in
  let envs, stats = Alg_exec.run_instrumented sources plan in
  check int_t "same rows as run_list" (List.length (run plan)) (List.length envs);
  let actual = Alg_exec.actual_of_stats stats in
  (match actual plan with
  | Some (rows, ms) ->
    check int_t "select actual rows" 2 rows;
    check bool_t "time non-negative" true (ms >= 0.0)
  | None -> Alcotest.fail "select node should have been executed");
  match actual scan with
  | Some (rows, _) -> check int_t "scan actual rows" 4 rows
  | None -> Alcotest.fail "scan node should have been executed"

let test_explain_analyze_output () =
  let scan = open_scan "people" "p" in
  let plan = Alg_plan.Limit (scan, 0) in
  let envs, stats = Alg_exec.run_instrumented sources plan in
  check int_t "limit 0 yields nothing" 0 (List.length envs);
  let report =
    Alg_cost.explain_analyze
      ~source_rows:(fun _ -> Alg_cost.default_scan_rows)
      ~actual:(Alg_exec.actual_of_stats stats)
      plan
  in
  check bool_t "limit line has actuals" true (contains "actual 0 rows" report);
  (* LIMIT 0 never pulls from its input: the scan must say so. *)
  check bool_t "scan never executed" true (contains "never executed" report);
  check bool_t "estimates still shown" true (contains "est 1000 rows" report)

(* Property (observability contract): with the trace sink disabled, the
   instrumented executor returns byte-identical results to the plain one
   on random plans, and records no spans. *)
let prop_instrumented_identical =
  QCheck2.Test.make ~name:"instrumented run = plain run (sink disabled)" ~count:60
    QCheck2.Gen.(triple (int_bound 15) (int_bound 15) (int_bound 20))
    (fun (n, m, threshold) ->
      let g = Prng.create ((n * 31) + m + threshold) in
      let mk var count =
        Alg_plan.Const_envs
          (List.init count (fun i ->
               Alg_env.of_bindings
                 [
                   ( var,
                     Dtree.of_tuple var
                       (Tuple.make
                          [ ("k", Value.Int (Prng.int g 6)); ("v", Value.Int i) ]) );
                 ]))
      in
      let left = mk "l" n and right = mk "r" m in
      let lk = child "l" "k" and rk = child "r" "k" in
      let open Alg_expr in
      let join =
        match threshold mod 3 with
        | 0 -> Alg_plan.Nl_join { left; right; pred = Some (lk =% rk) }
        | 1 ->
          Alg_plan.Hash_join
            { left; right; left_key = lk; right_key = rk; residual = None }
        | _ -> Alg_plan.Merge_join { left; right; left_key = lk; right_key = rk }
      in
      let plan =
        Alg_plan.Limit
          (Alg_plan.Select (join, Binop (Alg_expr.Le, child "l" "v", ci threshold)), 10)
      in
      let plain = List.map Alg_env.to_string (run plan) in
      let instrumented, _ = Alg_exec.run_instrumented sources plan in
      plain = List.map Alg_env.to_string instrumented
      && Obs_trace.roots () = [])

(* Property: select pushdown through join preserves results. *)
let prop_select_pushes_through_join =
  QCheck2.Test.make ~name:"select over join = pushed select" ~count:50
    QCheck2.Gen.(int_range 0 25)
    (fun threshold ->
      let open Alg_expr in
      let lk = child "p" "dept" and rk = child "d" "did" in
      let pred = Binop (Alg_expr.Le, child "p" "id", ci threshold) in
      let plain =
        Alg_plan.Select
          ( Alg_plan.Hash_join
              { left = open_scan "people" "p"; right = open_scan "depts" "d";
                left_key = lk; right_key = rk; residual = None },
            pred )
      in
      let pushed =
        Alg_plan.Hash_join
          { left = Alg_plan.Select (open_scan "people" "p", pred);
            right = open_scan "depts" "d"; left_key = lk; right_key = rk; residual = None }
      in
      let norm plan =
        List.sort compare (List.map Alg_env.to_string (run plan))
      in
      norm plain = norm pushed)

(* ------------------------------------------------------------------ *)
(* Group determinism (regressions) and the batch engine                *)
(* ------------------------------------------------------------------ *)

(* Keyless aggregation over empty input yields exactly one row of
   aggregate identities — in both engines. *)
let test_group_empty_input () =
  let plan =
    Alg_plan.Group
      {
        input = Alg_plan.Const_envs [];
        keys = [];
        aggs =
          [
            ("n", Alg_plan.A_count);
            ("s", Alg_plan.A_sum (child "p" "id"));
            ("a", Alg_plan.A_avg (child "p" "id"));
            ("mn", Alg_plan.A_min (child "p" "id"));
            ("mx", Alg_plan.A_max (child "p" "id"));
            ("c", Alg_plan.A_collect (child "p" "id"));
          ];
      }
  in
  let check_engine label envs =
    check int_t (label ^ ": one identity row") 1 (List.length envs);
    let e = List.hd envs in
    check value_t (label ^ ": count 0") (Value.Int 0) (Alg_env.value_of e "n");
    check value_t (label ^ ": sum null") Value.Null (Alg_env.value_of e "s");
    check value_t (label ^ ": avg null") Value.Null (Alg_env.value_of e "a");
    check value_t (label ^ ": min null") Value.Null (Alg_env.value_of e "mn");
    check value_t (label ^ ": max null") Value.Null (Alg_env.value_of e "mx");
    match Alg_env.get e "c" with
    | Some tree -> check int_t (label ^ ": empty collection") 0 (List.length (Dtree.kids tree))
    | None -> Alcotest.fail (label ^ ": expected collection binding")
  in
  check_engine "tuple" (run plan);
  check_engine "batch" (fst (Alg_exec.run_batched ~chunk:4 sources plan))

(* Null group keys land in one deterministic group; group order is
   first-appearance order in both engines. *)
let test_group_null_keys () =
  let plan =
    Alg_plan.Group
      {
        input = open_scan "people" "p";
        keys = [ ("dept", child "p" "dept") ];
        aggs = [ ("n", Alg_plan.A_count) ];
      }
  in
  let snapshot envs =
    List.map (fun e -> (Alg_env.value_of e "dept", Alg_env.value_of e "n")) envs
  in
  let tuple = snapshot (run plan) in
  let batch = snapshot (fst (Alg_exec.run_batched ~chunk:3 sources plan)) in
  check int_t "three groups (null keys grouped)" 3 (List.length tuple);
  check bool_t "first-appearance order" true
    (tuple = [ (Value.Int 10, Value.Int 2); (Value.Int 20, Value.Int 1); (Value.Null, Value.Int 1) ]);
  check bool_t "batch agrees" true (tuple = batch)

let batch_run ?(chunk = 4) plan = fst (Alg_exec.run_batched ~chunk sources plan)

let test_batch_basic_equivalence () =
  let open Alg_expr in
  let plans =
    [
      open_scan "people" "p";
      Alg_plan.Select (open_scan "people" "p", Binop (Alg_expr.Le, child "p" "id", ci 2));
      Alg_plan.Sort
        ( open_scan "people" "p",
          [ { Alg_plan.sort_key = child "p" "dept"; ascending = false } ] );
      Alg_plan.Limit (open_scan "people" "p", 3);
      Alg_plan.Outer_union (open_scan "people" "p", open_scan "depts" "d");
    ]
  in
  List.iteri
    (fun i plan ->
      List.iter
        (fun chunk ->
          check bool_t
            (Printf.sprintf "plan %d chunk %d" i chunk)
            true
            (List.map Alg_env.to_string (run plan)
            = List.map Alg_env.to_string (batch_run ~chunk plan)))
        [ 1; 2; 1024 ])
    plans

(* The fused select+project surfaces in the per-operator stats, and a
   non-vectorized operator reports its tuple-engine fallback. *)
let test_batch_stats_cells () =
  let open Alg_expr in
  let sel = Alg_plan.Select (open_scan "people" "p", Binop (Alg_expr.Le, child "p" "id", ci 3)) in
  let plan = Alg_plan.Project (sel, [ "p" ]) in
  let envs, stats = Alg_exec.run_batched ~chunk:2 sources plan in
  check int_t "fused rows" 3 (List.length envs);
  check bool_t "select reports fusion" true
    (List.exists (contains "fused") (Alg_batch.cells_of_stats stats sel));
  check bool_t "project reports batches" true
    (List.exists (contains "batches=") (Alg_batch.cells_of_stats stats plan));
  let distinct = Alg_plan.Distinct (open_scan "people" "p") in
  let envs, stats = Alg_exec.run_batched ~chunk:2 sources distinct in
  check int_t "distinct rows" 4 (List.length envs);
  check bool_t "distinct reports fallback" true
    (List.exists (contains "fallback") (Alg_batch.cells_of_stats stats distinct))

let test_batch_strict_unavailable () =
  let plan = Alg_plan.Limit (Alg_plan.Sort (open_scan "gone_source" "p", []), 0) in
  try
    ignore (batch_run plan);
    Alcotest.fail "expected Source_unavailable"
  with Alg_exec.Source_unavailable name -> check string_t "names the source" "gone_source" name

(* Property (the batch-engine contract): batched execution is
   observably identical to tuple-at-a-time execution — same rows, same
   order (document order, sort stability, group order), same aggregate
   values — over random plans and chunk sizes. *)
let prop_batch_equals_tuple =
  QCheck2.Test.make ~name:"batch run = tuple run (random plans, random chunks)" ~count:150
    QCheck2.Gen.(quad (int_bound 25) (int_bound 25) (int_bound 5) (int_bound 1000))
    (fun (n, m, shape, seed) ->
      let g = Prng.create (seed + (n * 131) + (m * 17) + shape) in
      let chunk = List.nth [ 1; 2; 3; 7; 64; 1024 ] (Prng.int g 6) in
      let mk var count =
        Alg_plan.Const_envs
          (List.init count (fun i ->
               let k = if Prng.int g 5 = 0 then Value.Null else Value.Int (Prng.int g 5) in
               Alg_env.of_bindings
                 [ (var, Dtree.of_tuple var (Tuple.make [ ("k", k); ("v", Value.Int i) ])) ]))
      in
      let left = mk "l" n and right = mk "r" m in
      let lk = child "l" "k" and rk = child "r" "k" in
      let open Alg_expr in
      let join =
        if Prng.int g 4 = 0 then
          (* non-vectorized operator: exercises the fallback path *)
          Alg_plan.Nl_join { left; right; pred = Some (lk =% rk) }
        else Alg_plan.Hash_join { left; right; left_key = lk; right_key = rk; residual = None }
      in
      let plan =
        match shape with
        | 0 ->
          Alg_plan.Project
            ( Alg_plan.Select (join, Binop (Alg_expr.Le, child "l" "v", ci (Prng.int g 20))),
              [ "l"; "r" ] )
        | 1 ->
          (* heavy key duplication: order differences from unstable sort
             or probe order would show up here *)
          Alg_plan.Sort (join, [ { Alg_plan.sort_key = lk; ascending = Prng.int g 2 = 0 } ])
        | 2 ->
          Alg_plan.Group
            {
              input = join;
              keys = [ ("k", lk) ];
              aggs =
                [
                  ("n", Alg_plan.A_count);
                  ("s", Alg_plan.A_sum (child "l" "v"));
                  ("mx", Alg_plan.A_max (child "r" "v"));
                ];
            }
        | 3 -> Alg_plan.Outer_union (Alg_plan.Union (left, right), open_scan "depts" "d")
        | 4 -> Alg_plan.Limit (Alg_plan.Distinct (Alg_plan.Project (join, [ "r" ])), Prng.int g 10)
        | _ ->
          Alg_plan.Construct
            {
              input = join;
              binding = "out";
              template = Alg_plan.T_node ("row", [], [ Alg_plan.T_value (child "l" "v") ]);
            }
      in
      let tuple = List.map Alg_env.to_string (Alg_exec.run_list sources plan) in
      let batch = List.map Alg_env.to_string (fst (Alg_exec.run_batched ~chunk sources plan)) in
      tuple = batch)

(* Property: partial-results mode (section 3.4) agrees across engines —
   same rows in order, same set of skipped sources. *)
let prop_batch_partial_equals_tuple =
  QCheck2.Test.make ~name:"batch partial run = tuple partial run" ~count:60
    QCheck2.Gen.(pair (int_bound 3) (int_bound 30))
    (fun (chunk_ix, threshold) ->
      let chunk = List.nth [ 1; 3; 8; 1024 ] chunk_ix in
      let open Alg_expr in
      let federation =
        Alg_plan.Outer_union
          ( Alg_plan.Select
              (open_scan "people" "p", Binop (Alg_expr.Le, child "p" "id", ci threshold)),
            Alg_plan.Union (open_scan "gone_source" "q", open_scan "depts" "d") )
      in
      let t_envs, t_skip = Alg_exec.run_partial sources federation in
      let b_envs, b_skip =
        Alg_exec.run_partial_mode (Alg_batch.Batch { chunk }) sources federation
      in
      List.map Alg_env.to_string t_envs = List.map Alg_env.to_string b_envs
      && List.sort compare t_skip = List.sort compare b_skip)

(* Property (the parallel-engine contract): morsel-driven parallel
   execution is byte-identical to both the tuple and batch engines —
   same rows, same order, same aggregate values — over random plans,
   domain counts, and morsel sizes.  Reuses the random-plan generator
   shape of [prop_batch_equals_tuple]. *)
let prop_parallel_equals_batch =
  QCheck2.Test.make ~name:"parallel run = batch run = tuple run (random plans)" ~count:120
    QCheck2.Gen.(quad (int_bound 25) (int_bound 25) (int_bound 5) (int_bound 1000))
    (fun (n, m, shape, seed) ->
      let g = Prng.create (seed + (n * 257) + (m * 29) + shape) in
      let domains = List.nth [ 1; 2; 3; 4 ] (Prng.int g 4) in
      let chunk = List.nth [ 1; 2; 3; 7; 64; 1024 ] (Prng.int g 6) in
      let mk var count =
        Alg_plan.Const_envs
          (List.init count (fun i ->
               let k = if Prng.int g 5 = 0 then Value.Null else Value.Int (Prng.int g 5) in
               Alg_env.of_bindings
                 [ (var, Dtree.of_tuple var (Tuple.make [ ("k", k); ("v", Value.Int i) ])) ]))
      in
      let left = mk "l" n and right = mk "r" m in
      let lk = child "l" "k" and rk = child "r" "k" in
      let open Alg_expr in
      let join =
        if Prng.int g 4 = 0 then
          (* non-vectorized operator: exercises the caller-side fallback *)
          Alg_plan.Nl_join { left; right; pred = Some (lk =% rk) }
        else Alg_plan.Hash_join { left; right; left_key = lk; right_key = rk; residual = None }
      in
      let plan =
        match shape with
        | 0 ->
          Alg_plan.Project
            ( Alg_plan.Select (join, Binop (Alg_expr.Le, child "l" "v", ci (Prng.int g 20))),
              [ "l"; "r" ] )
        | 1 ->
          (* heavy key duplication: an unstable parallel merge or probe
             reorder would show up here *)
          Alg_plan.Sort (join, [ { Alg_plan.sort_key = lk; ascending = Prng.int g 2 = 0 } ])
        | 2 ->
          Alg_plan.Group
            {
              input = join;
              keys = [ ("k", lk) ];
              aggs =
                [
                  ("n", Alg_plan.A_count);
                  ("s", Alg_plan.A_sum (child "l" "v"));
                  ("mx", Alg_plan.A_max (child "r" "v"));
                ];
            }
        | 3 -> Alg_plan.Outer_union (Alg_plan.Union (left, right), open_scan "depts" "d")
        | 4 -> Alg_plan.Limit (Alg_plan.Distinct (Alg_plan.Project (join, [ "r" ])), Prng.int g 10)
        | _ ->
          Alg_plan.Construct
            {
              input = join;
              binding = "out";
              template = Alg_plan.T_node ("row", [], [ Alg_plan.T_value (child "l" "v") ]);
            }
      in
      let tuple = List.map Alg_env.to_string (Alg_exec.run_list sources plan) in
      let batch = List.map Alg_env.to_string (fst (Alg_exec.run_batched ~chunk sources plan)) in
      let par =
        List.map Alg_env.to_string
          (Alg_exec.run_mode (Alg_batch.Parallel { domains; chunk }) sources plan)
      in
      tuple = batch && batch = par)

(* Property: partial-results mode agrees between the parallel and tuple
   engines — same rows in order, same set of skipped sources. *)
let prop_parallel_partial_equals_tuple =
  QCheck2.Test.make ~name:"parallel partial run = tuple partial run" ~count:40
    QCheck2.Gen.(pair (int_bound 3) (int_bound 30))
    (fun (domains_ix, threshold) ->
      let domains = List.nth [ 1; 2; 3; 4 ] domains_ix in
      let open Alg_expr in
      let federation =
        Alg_plan.Outer_union
          ( Alg_plan.Select
              (open_scan "people" "p", Binop (Alg_expr.Le, child "p" "id", ci threshold)),
            Alg_plan.Union (open_scan "gone_source" "q", open_scan "depts" "d") )
      in
      let t_envs, t_skip = Alg_exec.run_partial sources federation in
      let p_envs, p_skip =
        Alg_exec.run_partial_mode
          (Alg_batch.Parallel { domains; chunk = 8 })
          sources federation
      in
      List.map Alg_env.to_string t_envs = List.map Alg_env.to_string p_envs
      && List.sort compare t_skip = List.sort compare p_skip)

(* Sort stability, all three engines: rows sharing a sort key must keep
   their input order.  The batch engine's decorate–sort–undecorate path
   and the parallel engine's merge rounds both promise this. *)
let test_sort_stability () =
  let rows =
    List.init 32 (fun i ->
        Alg_env.of_bindings
          [ ("r", Dtree.of_tuple "r" (Tuple.make [ ("k", Value.Int (i mod 3)); ("v", Value.Int i) ])) ])
  in
  let plan =
    Alg_plan.Sort
      (Alg_plan.Const_envs rows, [ { Alg_plan.sort_key = child "r" "k"; ascending = true } ])
  in
  let assert_stable name envs =
    let by_key = Hashtbl.create 3 in
    List.iter
      (fun env ->
        let k = Alg_expr.eval env (child "r" "k") in
        let v =
          match Alg_expr.eval env (child "r" "v") with Value.Int i -> i | _ -> -1
        in
        let prev = Option.value (Hashtbl.find_opt by_key k) ~default:(-1) in
        check bool_t (Printf.sprintf "%s: ties keep input order" name) true (v > prev);
        Hashtbl.replace by_key k v)
      envs;
    check int_t (Printf.sprintf "%s: row count" name) 32 (List.length envs)
  in
  assert_stable "tuple" (run plan);
  assert_stable "batch" (batch_run ~chunk:5 plan);
  List.iter
    (fun domains ->
      assert_stable
        (Printf.sprintf "parallel(domains=%d)" domains)
        (Alg_exec.run_mode (Alg_batch.Parallel { domains; chunk = 4 }) sources plan))
    [ 1; 2; 4 ]

(* Property: the three join algorithms agree on random data. *)
let prop_joins_agree =
  QCheck2.Test.make ~name:"nl = hash = merge join on random relations" ~count:60
    QCheck2.Gen.(pair (int_bound 20) (int_bound 20))
    (fun (n, m) ->
      let g = Prng.create ((n * 37) + m) in
      let mk var count =
        Alg_plan.Const_envs
          (List.init count (fun i ->
               Alg_env.of_bindings
                 [
                   ( var,
                     Dtree.of_tuple var
                       (Tuple.make
                          [ ("k", Value.Int (Prng.int g 6)); ("v", Value.Int i) ]) );
                 ]))
      in
      let left = mk "l" n and right = mk "r" m in
      let lk = child "l" "k" and rk = child "r" "k" in
      let open Alg_expr in
      let norm plan = List.sort compare (List.map Alg_env.to_string (run plan)) in
      let nl = norm (Alg_plan.Nl_join { left; right; pred = Some (lk =% rk) }) in
      let hash =
        norm (Alg_plan.Hash_join { left; right; left_key = lk; right_key = rk; residual = None })
      in
      let merge = norm (Alg_plan.Merge_join { left; right; left_key = lk; right_key = rk }) in
      nl = hash && hash = merge)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_select_pushes_through_join;
        prop_joins_agree;
        prop_instrumented_identical;
        prop_batch_equals_tuple;
        prop_batch_partial_equals_tuple;
        prop_parallel_equals_batch;
        prop_parallel_partial_equals_tuple;
      ]
  in
  Alcotest.run "algebra"
    [
      ( "env",
        [
          Alcotest.test_case "basics" `Quick test_env_basics;
          Alcotest.test_case "tuple roundtrip" `Quick test_env_tuple_roundtrip;
        ] );
      ( "expr",
        [
          Alcotest.test_case "tree access" `Quick test_expr_tree_access;
          Alcotest.test_case "three-valued logic" `Quick test_expr_three_valued;
          Alcotest.test_case "free vars" `Quick test_expr_free_vars;
        ] );
      ( "operators",
        [
          Alcotest.test_case "scan + select" `Quick test_scan_select;
          Alcotest.test_case "project + extend" `Quick test_project_extend;
          Alcotest.test_case "join algorithms agree" `Quick test_join_algorithms_agree;
          Alcotest.test_case "dependent join" `Quick test_dep_join;
          Alcotest.test_case "sort/distinct/limit" `Quick test_sort_distinct_limit;
          Alcotest.test_case "group + aggregates" `Quick test_group_aggregates;
          Alcotest.test_case "union / outer union" `Quick test_union_outer_union;
          Alcotest.test_case "navigate" `Quick test_navigate;
          Alcotest.test_case "unnest" `Quick test_unnest;
          Alcotest.test_case "construct" `Quick test_construct;
          Alcotest.test_case "construct splice" `Quick test_construct_splice;
          Alcotest.test_case "partial results" `Quick test_partial_results;
          Alcotest.test_case "explain" `Quick test_explain_mentions_operators;
          Alcotest.test_case "static metadata" `Quick test_free_sources_output_vars;
          Alcotest.test_case "cost estimates" `Quick test_cost_estimates;
          Alcotest.test_case "annotate per line" `Quick test_annotate_per_line;
          Alcotest.test_case "run_instrumented" `Quick test_run_instrumented;
          Alcotest.test_case "explain analyze output" `Quick test_explain_analyze_output;
        ]
        @ props );
      ( "batch",
        [
          Alcotest.test_case "group over empty input" `Quick test_group_empty_input;
          Alcotest.test_case "group null keys deterministic" `Quick test_group_null_keys;
          Alcotest.test_case "batch = tuple basics" `Quick test_batch_basic_equivalence;
          Alcotest.test_case "stats cells (fused/fallback)" `Quick test_batch_stats_cells;
          Alcotest.test_case "strict mode raises" `Quick test_batch_strict_unavailable;
          Alcotest.test_case "sort stability (all engines)" `Quick test_sort_stability;
        ] );
    ]
