(* Scatter-gather fetch scheduling, the fragment cache, and their
   equivalence with sequential execution (ROADMAP: overlapped source
   accesses must not change what a query answers). *)

let bool_t = Alcotest.bool
let int_t = Alcotest.int
let check = Alcotest.check
let q = Xq_parser.parse_exn

(* ------------------------------------------------------------------ *)
(* Obs_clock rounds                                                    *)
(* ------------------------------------------------------------------ *)

let test_round_advances_by_max () =
  Obs_clock.reset_virtual ();
  Obs_clock.begin_round ();
  Obs_clock.begin_lane ();
  Obs_clock.advance 10.0;
  Obs_clock.begin_lane ();
  Obs_clock.advance 4.0;
  let cost = Obs_clock.end_round () in
  Alcotest.(check (float 0.001)) "round cost is the slowest lane" 10.0 cost;
  Alcotest.(check (float 0.001)) "clock advanced by the max" 10.0 (Obs_clock.virtual_ms ())

let test_nested_rounds_merge_serially () =
  Obs_clock.reset_virtual ();
  Obs_clock.begin_round ();
  Obs_clock.begin_lane ();
  Obs_clock.advance 5.0;
  Obs_clock.begin_round ();
  Obs_clock.advance 7.0;
  Alcotest.(check (float 0.001)) "nested round returns 0" 0.0 (Obs_clock.end_round ());
  Obs_clock.begin_lane ();
  Obs_clock.advance 3.0;
  Alcotest.(check (float 0.001)) "nested cost merged into enclosing lane" 12.0
    (Obs_clock.end_round ())

(* ------------------------------------------------------------------ *)
(* Fetch_sched                                                         *)
(* ------------------------------------------------------------------ *)

let test_scheduler_rounds_and_dedup () =
  Obs_clock.reset_virtual ();
  let ran = ref [] in
  let mk key cost =
    {
      Fetch_sched.task_key = key;
      task_run =
        (fun () ->
          ran := key :: !ran;
          Obs_clock.advance cost;
          key);
    }
  in
  let outs = Fetch_sched.run ~fanout:2 [ mk "a" 10.0; mk "b" 4.0; mk "a" 10.0; mk "c" 6.0 ] in
  check int_t "one outcome per input task" 4 (List.length outs);
  check int_t "duplicate key executed once" 3 (List.length !ran);
  (* rounds of 2 over the unique tasks [a; b; c]: max(10,4) + 6 *)
  Alcotest.(check (float 0.001)) "clock charged max-per-round" 16.0 (Obs_clock.virtual_ms ());
  (match outs with
  | [ a1; b; a2; c ] ->
    check bool_t "first a not shared" false a1.Fetch_sched.shared;
    check bool_t "second a shared" true a2.Fetch_sched.shared;
    check int_t "shared outcome keeps the executing round" a1.Fetch_sched.round
      a2.Fetch_sched.round;
    check int_t "c runs in the second round" 1 c.Fetch_sched.round;
    (match (a2.Fetch_sched.result, b.Fetch_sched.result) with
    | Ok "a", Ok "b" -> ()
    | _ -> Alcotest.fail "unexpected task results")
  | _ -> Alcotest.fail "expected four outcomes")

let test_scheduler_captures_exceptions () =
  Obs_clock.reset_virtual ();
  let outs =
    Fetch_sched.run ~fanout:4
      [
        { Fetch_sched.task_key = "ok"; task_run = (fun () -> 1) };
        { Fetch_sched.task_key = "boom"; task_run = (fun () -> failwith "boom") };
      ]
  in
  match List.map (fun o -> o.Fetch_sched.result) outs with
  | [ Ok 1; Error (Failure msg) ] when msg = "boom" -> ()
  | _ -> Alcotest.fail "expected one success and one captured failure"

(* ------------------------------------------------------------------ *)
(* Frag_cache                                                          *)
(* ------------------------------------------------------------------ *)

let rows_result tag = Source.R_rows ([ tag ], [])

let test_frag_cache_lru () =
  let c = Frag_cache.create ~capacity:2 () in
  check bool_t "enabled" true (Frag_cache.enabled c);
  Frag_cache.put c ~source:"s" ~fragment:"f1" (rows_result "f1");
  Frag_cache.put c ~source:"s" ~fragment:"f2" (rows_result "f2");
  (match Frag_cache.get c ~source:"s" ~fragment:"f1" with
  | Some (Source.R_rows ([ "f1" ], [])) -> ()
  | _ -> Alcotest.fail "expected f1 hit");
  Frag_cache.put c ~source:"s" ~fragment:"f3" (rows_result "f3");
  check bool_t "LRU entry evicted" true (Frag_cache.get c ~source:"s" ~fragment:"f2" = None);
  check bool_t "recent entry survives" true
    (Frag_cache.get c ~source:"s" ~fragment:"f1" <> None);
  check int_t "one eviction counted" 1 (Frag_cache.stats c).Frag_cache.frag_evictions

let test_frag_cache_ttl () =
  Obs_clock.reset_virtual ();
  let c = Frag_cache.create ~ttl_ms:50.0 ~capacity:4 () in
  Frag_cache.put c ~source:"s" ~fragment:"f" (rows_result "f");
  check bool_t "fresh entry hits" true (Frag_cache.get c ~source:"s" ~fragment:"f" <> None);
  Obs_clock.advance 60.0;
  check bool_t "expired entry misses" true (Frag_cache.get c ~source:"s" ~fragment:"f" = None);
  check int_t "expiration counted" 1 (Frag_cache.stats c).Frag_cache.frag_expirations

(* Eviction order must track recency, not insertion: repeatedly
   touching an old entry keeps promoting it to the front of the
   intrusive list, so the victim is always the true LRU. *)
let test_frag_cache_touch_order () =
  let c = Frag_cache.create ~capacity:3 () in
  Frag_cache.put c ~source:"s" ~fragment:"a" (rows_result "a");
  Frag_cache.put c ~source:"s" ~fragment:"b" (rows_result "b");
  Frag_cache.put c ~source:"s" ~fragment:"c" (rows_result "c");
  (* touch a twice, then b — recency is now b > a > c *)
  ignore (Frag_cache.get c ~source:"s" ~fragment:"a");
  ignore (Frag_cache.get c ~source:"s" ~fragment:"a");
  ignore (Frag_cache.get c ~source:"s" ~fragment:"b");
  Frag_cache.put c ~source:"s" ~fragment:"d" (rows_result "d");
  check bool_t "c (LRU) evicted" true (Frag_cache.get c ~source:"s" ~fragment:"c" = None);
  check bool_t "a survives" true (Frag_cache.get c ~source:"s" ~fragment:"a" <> None);
  check bool_t "b survives" true (Frag_cache.get c ~source:"s" ~fragment:"b" <> None);
  (* overwrite of a live key must not evict anyone else *)
  Frag_cache.put c ~source:"s" ~fragment:"d" (rows_result "d2");
  check int_t "overwrite evicts nothing" 1 (Frag_cache.stats c).Frag_cache.frag_evictions;
  (* d was just re-put: it is now MRU, so the next eviction hits a *)
  Frag_cache.put c ~source:"s" ~fragment:"e" (rows_result "e");
  check bool_t "a (new LRU) evicted after overwrite" true
    (Frag_cache.get c ~source:"s" ~fragment:"a" = None);
  check bool_t "overwritten value readable" true
    (match Frag_cache.get c ~source:"s" ~fragment:"d" with
    | Some (Source.R_rows ([ "d2" ], [])) -> true
    | _ -> false)

(* TTL boundary: expiry is strict — an entry aged by exactly its TTL is
   still fresh; one tick past and it is gone. *)
let test_frag_cache_ttl_boundary () =
  Obs_clock.reset_virtual ();
  let c = Frag_cache.create ~ttl_ms:50.0 ~capacity:4 () in
  Frag_cache.put c ~source:"s" ~fragment:"f" (rows_result "f");
  Obs_clock.advance 50.0;
  check bool_t "age = ttl exactly still hits" true
    (Frag_cache.get c ~source:"s" ~fragment:"f" <> None);
  check int_t "no expiration at the boundary" 0
    (Frag_cache.stats c).Frag_cache.frag_expirations;
  Obs_clock.advance 0.001;
  check bool_t "one tick past ttl misses" true
    (Frag_cache.get c ~source:"s" ~fragment:"f" = None);
  check int_t "expiration counted once" 1 (Frag_cache.stats c).Frag_cache.frag_expirations;
  check int_t "expired entry is unlinked" 0 (Frag_cache.size c)

(* invalidate_source on a full cache must leave the recency list
   consistent: later puts still evict correctly and never resurrect a
   dropped entry. *)
let test_frag_cache_invalidate_full () =
  let c = Frag_cache.create ~capacity:4 () in
  Frag_cache.put c ~source:"s1" ~fragment:"a" (rows_result "a");
  Frag_cache.put c ~source:"s2" ~fragment:"b" (rows_result "b");
  Frag_cache.put c ~source:"s1" ~fragment:"c" (rows_result "c");
  Frag_cache.put c ~source:"s2" ~fragment:"d" (rows_result "d");
  check int_t "cache is full" 4 (Frag_cache.size c);
  check int_t "s1 fragments dropped" 2 (Frag_cache.invalidate_source c "s1");
  check int_t "two survivors" 2 (Frag_cache.size c);
  check bool_t "dropped entries gone" true
    (Frag_cache.get c ~source:"s1" ~fragment:"a" = None
    && Frag_cache.get c ~source:"s1" ~fragment:"c" = None);
  (* refill past capacity: list splicing after invalidation must still
     pick the right victim (b is older than d) *)
  Frag_cache.put c ~source:"s3" ~fragment:"e" (rows_result "e");
  Frag_cache.put c ~source:"s3" ~fragment:"f" (rows_result "f");
  check int_t "full again" 4 (Frag_cache.size c);
  Frag_cache.put c ~source:"s3" ~fragment:"g" (rows_result "g");
  check bool_t "oldest survivor evicted first" true
    (Frag_cache.get c ~source:"s2" ~fragment:"b" = None);
  check bool_t "newer survivor intact" true
    (Frag_cache.get c ~source:"s2" ~fragment:"d" <> None);
  check int_t "invalidations counted" 2 (Frag_cache.stats c).Frag_cache.frag_invalidations

let test_frag_cache_invalidate_source () =
  let c = Frag_cache.create ~capacity:8 () in
  Frag_cache.put c ~source:"s1" ~fragment:"a" (rows_result "a");
  Frag_cache.put c ~source:"s1" ~fragment:"b" (rows_result "b");
  Frag_cache.put c ~source:"s2" ~fragment:"a" (rows_result "a");
  check int_t "both s1 fragments dropped" 2 (Frag_cache.invalidate_source c "s1");
  check int_t "s2 untouched" 1 (Frag_cache.size c)

let test_frag_cache_disabled () =
  let c = Frag_cache.create ~capacity:0 () in
  check bool_t "disabled" false (Frag_cache.enabled c);
  Frag_cache.put c ~source:"s" ~fragment:"f" (rows_result "f");
  check bool_t "no storage" true (Frag_cache.get c ~source:"s" ~fragment:"f" = None);
  let st = Frag_cache.stats c in
  check int_t "disabled lookups uncounted" 0 (st.Frag_cache.frag_hits + st.Frag_cache.frag_misses)

(* ------------------------------------------------------------------ *)
(* Mat_cache TTL (satellite of the same freshness story)               *)
(* ------------------------------------------------------------------ *)

let test_mat_cache_ttl () =
  Obs_clock.reset_virtual ();
  let c = Mat_cache.create ~ttl_ms:50.0 ~capacity:4 () in
  Mat_cache.put c "query" [ Dtree.leaf "x" (Value.Int 1) ];
  check bool_t "fresh entry hits" true (Mat_cache.get c "query" <> None);
  Obs_clock.advance 60.0;
  check bool_t "expired entry misses" true (Mat_cache.get c "query" = None);
  check int_t "expiration counted" 1 (Mat_cache.stats c).Mat_cache.expirations;
  let untimed = Mat_cache.create ~capacity:4 () in
  Mat_cache.put untimed "query" [ Dtree.leaf "x" (Value.Int 1) ];
  Obs_clock.advance 1000.0;
  check bool_t "no TTL means no expiry" true (Mat_cache.get untimed "query" <> None)

(* ------------------------------------------------------------------ *)
(* Property: gather + fragment cache is observably identical to        *)
(* sequential execution, strict and partial alike.                     *)
(* ------------------------------------------------------------------ *)

(* Availability is restricted to up/down (1.0 / 0.0): fractional
   availability samples the simulator's PRNG once per remote call, and
   dedup/batching/caching legitimately change how many calls happen. *)
let prop_gather_equals_sequential =
  QCheck2.Test.make ~name:"gather+cache = sequential (strict and partial)" ~count:30
    QCheck2.Gen.(
      quad (int_range 0 25) (int_range 0 40) (int_range 1 6) (pair bool bool))
    (fun (ncust, nord, fanout, (crm_up, ext_up)) ->
      let g = Prng.create ((ncust * 977) + (nord * 31) + fanout) in
      let crm = Rel_db.create ~name:"crm" () in
      ignore (Rel_db.exec crm "CREATE TABLE customers (id INT, tier INT)");
      ignore (Rel_db.exec crm "CREATE TABLE orders (cust_id INT, amount INT)");
      for i = 1 to ncust do
        ignore
          (Rel_db.exec crm
             (Printf.sprintf "INSERT INTO customers VALUES (%d, %d)" i (Prng.int g 4)))
      done;
      for _ = 1 to nord do
        ignore
          (Rel_db.exec crm
             (Printf.sprintf "INSERT INTO orders VALUES (%d, %d)"
                (Prng.int g (max 1 ncust) + 1) (Prng.int g 1000)))
      done;
      let ext = Rel_db.create ~name:"ext" () in
      ignore (Rel_db.exec ext "CREATE TABLE people (id INT, name TEXT)");
      for i = 1 to ncust do
        ignore (Rel_db.exec ext (Printf.sprintf "INSERT INTO people VALUES (%d, 'p%d')" i i))
      done;
      let wrap db up =
        fst
          (Net_sim.wrap ~seed:7
             { Net_sim.default_profile with Net_sim.availability = (if up then 1.0 else 0.0) }
             (Rel_source.make db))
      in
      let cat = Med_catalog.create ~frag_capacity:(if ncust mod 2 = 0 then 8 else 0) () in
      Med_catalog.register_source cat (wrap crm crm_up);
      Med_catalog.register_source cat (wrap ext ext_up);
      let query =
        q
          {|WHERE <row><id>$i</id><tier>$t</tier></row> IN "crm.customers",
                 <row><cust_id>$i</cust_id><amount>$a</amount></row> IN "crm.orders",
                 <row><id>$i</id><name>$n</name></row> IN "ext.people",
                 $t >= 1, $a < 800
            CONSTRUCT <hit><i>$i</i><n>$n</n><a>$a</a></hit>|}
      in
      let agree opts =
        let compiled = Med_exec.compile ~opts cat query in
        let strict () =
          match Med_exec.run_compiled cat compiled with
          | r -> Ok (List.map Dtree.to_string r.Med_exec.trees)
          | exception Source.Unavailable s -> Error ("source:" ^ s)
          | exception Alg_exec.Source_unavailable s -> Error ("plan:" ^ s)
        in
        let partial () =
          let r = Med_exec.run_compiled_partial cat compiled in
          ( List.map Dtree.to_string r.Med_exec.trees,
            List.sort compare r.Med_exec.skipped_sources )
        in
        Med_catalog.set_fetch_options cat Fetch_sched.default_options;
        let s_strict = strict () and s_partial = partial () in
        Med_catalog.set_fetch_options cat (Fetch_sched.gather_options ~fanout ());
        (* twice: cold then warm fragment cache *)
        let g1_strict = strict () and g1_partial = partial () in
        let g2_strict = strict () and g2_partial = partial () in
        s_strict = g1_strict && s_strict = g2_strict && s_partial = g1_partial
        && s_partial = g2_partial
      in
      agree Med_sqlgen.default_options && agree Med_sqlgen.no_join_pushdown)

let () =
  let props = List.map QCheck_alcotest.to_alcotest [ prop_gather_equals_sequential ] in
  Alcotest.run "fetch"
    [
      ( "clock",
        [
          Alcotest.test_case "round advances by max lane" `Quick test_round_advances_by_max;
          Alcotest.test_case "nested rounds merge serially" `Quick
            test_nested_rounds_merge_serially;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "rounds and dedup" `Quick test_scheduler_rounds_and_dedup;
          Alcotest.test_case "exception capture" `Quick test_scheduler_captures_exceptions;
        ] );
      ( "frag-cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_frag_cache_lru;
          Alcotest.test_case "ttl expiry" `Quick test_frag_cache_ttl;
          Alcotest.test_case "eviction under repeated touch" `Quick test_frag_cache_touch_order;
          Alcotest.test_case "ttl boundary is strict" `Quick test_frag_cache_ttl_boundary;
          Alcotest.test_case "invalidate with full cache" `Quick test_frag_cache_invalidate_full;
          Alcotest.test_case "invalidate source" `Quick test_frag_cache_invalidate_source;
          Alcotest.test_case "capacity 0 disables" `Quick test_frag_cache_disabled;
        ] );
      ( "mat-cache",
        [ Alcotest.test_case "result-cache ttl" `Quick test_mat_cache_ttl ] );
      ("equivalence", props);
    ]
