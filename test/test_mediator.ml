(* Tests for sources, the registry, the network simulator and the
   mediator (catalog, SQL fragment compiler, planner, executor).

   The central property: for every query, the compiled pipeline
   (decompose -> push down -> join -> construct) returns exactly what the
   reference evaluator computes by brute force. *)

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool
let string_t = Alcotest.string

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Fixture: a small federation                                         *)
(* ------------------------------------------------------------------ *)

let make_crm () =
  let db = Rel_db.create ~name:"crm" () in
  List.iter
    (fun s -> ignore (Rel_db.exec db s))
    [
      "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT NOT NULL, region TEXT, tier INT)";
      "CREATE TABLE orders (oid INT PRIMARY KEY, cust_id INT, amount FLOAT, item TEXT)";
      "INSERT INTO customers VALUES (1, 'Acme Corp', 'west', 1), (2, 'Globex', 'east', 2), \
       (3, 'Initech', 'west', 2), (4, 'Umbrella', 'south', 3)";
      "INSERT INTO orders VALUES (100, 1, 250.0, 'widget'), (101, 1, 70.0, 'gadget'), \
       (102, 2, 9000.0, 'server'), (103, 3, 120.0, 'widget'), (104, 9, 5.0, 'scrap')";
    ];
  db

let catalog_xml =
  {|<catalog>
      <product sku="widget"><price>25</price><cat>tools</cat></product>
      <product sku="gadget"><price>70</price><cat>tools</cat></product>
      <product sku="server"><price>4500</price><cat>infra</cat></product>
    </catalog>|}

let make_catalog () =
  let cat = Med_catalog.create () in
  Med_catalog.register_source cat (Rel_source.make (make_crm ()));
  Med_catalog.register_source cat
    (Xml_source.of_xml_strings ~name:"products" [ ("catalog", catalog_xml) ]);
  Med_catalog.register_source cat
    (Csv_source.make ~name:"legacy"
       [ ("contacts", "cust,email\nAcme Corp,acme@x.com\nGlobex,info@globex.com\n") ]);
  cat

let q = Xq_parser.parse_exn

(* Compare compiled execution against the reference evaluator. *)
let agree ?opts cat query =
  let compiled = Med_exec.run ?opts cat query in
  let reference = Xq_eval.eval (Med_exec.direct_resolver cat) query in
  let norm trees = List.sort compare (List.map Dtree.to_string trees) in
  norm compiled = norm reference

(* ------------------------------------------------------------------ *)
(* Sources                                                             *)
(* ------------------------------------------------------------------ *)

let test_rel_source_exports () =
  let src = Rel_source.make (make_crm ()) in
  check (Alcotest.list string_t) "exports" [ "customers"; "orders" ]
    (List.sort String.compare (src.Source.document_names ()));
  let docs = src.Source.documents "customers" in
  check int_t "one doc" 1 (List.length docs);
  check int_t "four rows" 4 (List.length (Dtree.kids (List.hd docs)))

let test_rel_source_sql () =
  let src = Rel_source.make (make_crm ()) in
  match src.Source.execute (Source.Q_sql "SELECT name FROM customers WHERE tier = 2") with
  | Source.R_rows (names, rows) ->
    check (Alcotest.list string_t) "cols" [ "name" ] names;
    check int_t "two tier-2" 2 (List.length rows)
  | Source.R_trees _ | Source.R_batch _ -> Alcotest.fail "expected rows"

let test_rel_source_capability () =
  let cap = { Source.scan_only with Source.can_project = true } in
  let src = Rel_source.make_limited cap (make_crm ()) in
  (try
     ignore (src.Source.execute (Source.Q_sql "SELECT * FROM customers WHERE tier = 2"));
     Alcotest.fail "expected rejection"
   with Source.Query_rejected _ -> ());
  match src.Source.execute (Source.Q_sql "SELECT name FROM customers") with
  | Source.R_rows (_, rows) -> check int_t "plain projection ok" 4 (List.length rows)
  | Source.R_trees _ | Source.R_batch _ -> Alcotest.fail "expected rows"

let test_xml_source_path () =
  let src = Xml_source.of_xml_strings ~name:"products" [ ("catalog", catalog_xml) ] in
  match
    src.Source.execute (Source.Q_path ("catalog", Xml_path.parse_exn "//product[cat='tools']"))
  with
  | Source.R_trees trees -> check int_t "two tools" 2 (List.length trees)
  | Source.R_rows _ | Source.R_batch _ -> Alcotest.fail "expected trees"

let test_csv_source_scan () =
  let src =
    Csv_source.make ~name:"legacy" [ ("contacts", "cust,email\nA,a@x\nB,b@x\n") ]
  in
  (match src.Source.execute (Source.Q_scan "contacts") with
  | Source.R_rows (_, rows) -> check int_t "two rows" 2 (List.length rows)
  | Source.R_trees _ | Source.R_batch _ -> Alcotest.fail "expected rows");
  try
    ignore (src.Source.execute (Source.Q_sql "SELECT * FROM contacts"));
    Alcotest.fail "expected rejection"
  with Source.Query_rejected _ -> ()

let test_registry_resolution () =
  let cat = make_catalog () in
  let reg = Med_catalog.registry cat in
  check bool_t "dotted export" true (Src_registry.resolve_export reg "crm.customers" <> None);
  check bool_t "unknown" true (Src_registry.resolve_export reg "nope.t" = None);
  let docs = Src_registry.documents reg "crm.orders" in
  check int_t "orders doc" 1 (List.length docs);
  check bool_t "exports listed" true
    (List.mem "crm.customers" (Src_registry.exports reg))

let test_net_sim_costs () =
  let src = Rel_source.make (make_crm ()) in
  let wrapped, stats =
    Net_sim.wrap { Net_sim.latency_ms = 10.0; per_tuple_ms = 1.0; availability = 1.0 } src
  in
  ignore (wrapped.Source.execute (Source.Q_sql "SELECT * FROM customers"));
  check int_t "one call" 1 stats.Net_sim.calls;
  check int_t "four tuples" 4 stats.Net_sim.tuples_shipped;
  check bool_t "virtual time = 10 + 4" true (abs_float (stats.Net_sim.virtual_ms -. 14.0) < 1e-9)

let test_net_sim_unavailable () =
  let src = Rel_source.make (make_crm ()) in
  let wrapped, stats =
    Net_sim.wrap ~seed:42 { Net_sim.default_profile with Net_sim.availability = 0.0 } src
  in
  (try
     ignore (wrapped.Source.execute (Source.Q_scan "customers"));
     Alcotest.fail "expected Unavailable"
   with Source.Unavailable name -> check string_t "names source" "crm" name);
  check int_t "failure recorded" 1 stats.Net_sim.failed

(* ------------------------------------------------------------------ *)
(* Catalog                                                             *)
(* ------------------------------------------------------------------ *)

let west_view_text =
  {|WHERE <row><id>$i</id><name>$n</name><region>"west"</region></row> IN "crm.customers"
    CONSTRUCT <customer><id>$i</id><name>$n</name></customer>|}

let test_catalog_views () =
  let cat = make_catalog () in
  Med_catalog.define_view_text cat "west_customers" west_view_text;
  check bool_t "registered" true (Med_catalog.find_view cat "west_customers" <> None);
  check int_t "depth 1" 1 (Med_catalog.view_depth cat "west_customers");
  (* hierarchical: a view over the view *)
  Med_catalog.define_view_text cat "west_ids"
    {|WHERE <customer><id>$i</id></customer> IN "west_customers"
      CONSTRUCT <wid>$i</wid>|};
  check int_t "depth 2" 2 (Med_catalog.view_depth cat "west_ids");
  check (Alcotest.list string_t) "deps" [ "west_customers" ]
    (Med_catalog.dependencies cat "west_ids")

let test_catalog_errors () =
  let cat = make_catalog () in
  Med_catalog.define_view_text cat "v1" west_view_text;
  let expect_err f =
    try
      f ();
      Alcotest.fail "expected Catalog_error"
    with Med_catalog.Catalog_error _ -> ()
  in
  expect_err (fun () -> Med_catalog.define_view_text cat "v1" west_view_text);
  expect_err (fun () ->
      Med_catalog.define_view_text cat "v2"
        {|WHERE <x>$a</x> IN "no_such_source" CONSTRUCT <y>$a</y>|});
  Med_catalog.define_view_text cat "v3"
    {|WHERE <customer><id>$i</id></customer> IN "v1" CONSTRUCT <z>$i</z>|};
  expect_err (fun () -> Med_catalog.drop_view cat "v1");
  Med_catalog.drop_view cat "v3";
  Med_catalog.drop_view cat "v1"

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let test_compile_pushes_sql () =
  let cat = make_catalog () in
  let compiled =
    Med_planner.compile cat
      (q
         {|WHERE <row><name>$n</name><tier>$t</tier></row> IN "crm.customers", $t >= 2
           CONSTRUCT <c>$n</c>|})
  in
  match compiled.Med_planner.accesses with
  | [ (_, Med_planner.A_sql { fragment; _ }) ] ->
    check bool_t "projected" true (contains fragment.Med_sqlgen.sql_text "SELECT name, tier");
    check bool_t "where pushed" true (contains fragment.Med_sqlgen.sql_text "WHERE");
    check bool_t "condition recorded" true
      (List.length fragment.Med_sqlgen.pushed_conditions = 1);
    check int_t "no residual" 0 (List.length compiled.Med_planner.residual_conditions)
  | _ -> Alcotest.fail "expected one SQL access"

let test_compile_no_pushdown_option () =
  let cat = make_catalog () in
  let compiled =
    Med_planner.compile ~opts:Med_sqlgen.no_pushdown cat
      (q
         {|WHERE <row><name>$n</name><tier>$t</tier></row> IN "crm.customers", $t >= 2
           CONSTRUCT <c>$n</c>|})
  in
  match compiled.Med_planner.accesses with
  | [ (_, Med_planner.A_sql { fragment; _ }) ] ->
    check bool_t "star projection" true (contains fragment.Med_sqlgen.sql_text "SELECT *");
    check bool_t "no where" false (contains fragment.Med_sqlgen.sql_text "WHERE");
    check int_t "condition residual" 1 (List.length compiled.Med_planner.residual_conditions)
  | _ -> Alcotest.fail "expected one SQL access"

let test_compile_xml_uses_path () =
  let cat = make_catalog () in
  let compiled =
    Med_planner.compile cat
      (q {|WHERE <product sku=$s><cat>"tools"</cat></product> IN "products.catalog"
           CONSTRUCT <p>$s</p>|})
  in
  (match compiled.Med_planner.accesses with
  | [ (_, Med_planner.A_path { path; _ }) ] ->
    let rendered = Xml_path.to_string path in
    check bool_t "descendant-or-self" true (contains rendered "descendant-or-self::product");
    check bool_t "attr presence" true (contains rendered "[@sku]");
    check bool_t "literal child pushed" true (contains rendered "[cat='tools']")
  | _ -> Alcotest.fail "expected a path access");
  (* pushdown disabled falls back to shipping documents *)
  let compiled =
    Med_planner.compile ~opts:Med_sqlgen.no_pushdown cat
      (q {|WHERE <product sku=$s/> IN "products.catalog" CONSTRUCT <p>$s</p>|})
  in
  (match compiled.Med_planner.accesses with
  | [ (_, Med_planner.A_match _) ] -> ()
  | _ -> Alcotest.fail "expected fallback to match");
  (* wildcard tags derive no useful path *)
  let compiled =
    Med_planner.compile cat (q {|WHERE <*>$c</*> IN "products.catalog" CONSTRUCT <x>$c</x>|})
  in
  match compiled.Med_planner.accesses with
  | [ (_, Med_planner.A_match _) ] -> ()
  | _ -> Alcotest.fail "expected match for wildcard"

let test_path_pushdown_ships_fewer_nodes () =
  let xml_src = Xml_source.of_xml_strings ~name:"products" [ ("catalog", catalog_xml) ] in
  let wrapped, stats = Net_sim.wrap Net_sim.default_profile xml_src in
  let cat = Med_catalog.create () in
  Med_catalog.register_source cat wrapped;
  let query =
    q {|WHERE <product sku=$s><cat>"infra"</cat></product> IN "products.catalog"
        CONSTRUCT <p>$s</p>|}
  in
  let r1 = Med_exec.run cat query in
  let pushed = stats.Net_sim.tuples_shipped in
  Net_sim.reset stats;
  let r2 = Med_exec.run ~opts:Med_sqlgen.no_pushdown cat query in
  let shipped = stats.Net_sim.tuples_shipped in
  check int_t "same answers" (List.length r1) (List.length r2);
  check bool_t "path preselection ships fewer nodes" true (pushed < shipped);
  check bool_t "matches reference" true (agree cat query)

let test_compile_nested_pattern_falls_back () =
  let cat = make_catalog () in
  (* content binding under row is not relational: falls back to match *)
  let compiled =
    Med_planner.compile cat (q {|WHERE <row>$c</row> IN "crm.customers" CONSTRUCT <x>$c</x>|})
  in
  match compiled.Med_planner.accesses with
  | [ (_, Med_planner.A_match _) ] -> ()
  | _ -> Alcotest.fail "expected fallback to match"

let test_explain_shows_fragments () =
  let cat = make_catalog () in
  let text =
    Med_exec.explain_text cat
      {|WHERE <row><name>$n</name></row> IN "crm.customers" CONSTRUCT <c>$n</c>|}
  in
  check bool_t "mentions SQL" true (contains text "SQL @crm");
  check bool_t "mentions scan" true (contains text "SCAN")

(* ------------------------------------------------------------------ *)
(* Execution correctness (vs reference)                                *)
(* ------------------------------------------------------------------ *)

let test_run_select_project () =
  let cat = make_catalog () in
  let query =
    q
      {|WHERE <row><name>$n</name><region>$r</region></row> IN "crm.customers", $r = 'west'
        CONSTRUCT <west>$n</west>|}
  in
  let results = Med_exec.run cat query in
  check int_t "two west customers" 2 (List.length results);
  check bool_t "matches reference" true (agree cat query)

let test_run_join_two_tables () =
  let cat = make_catalog () in
  let query =
    q
      {|WHERE <row><id>$i</id><name>$n</name></row> IN "crm.customers",
             <row><cust_id>$i</cust_id><amount>$a</amount></row> IN "crm.orders",
             $a > 100
        CONSTRUCT <big><who>$n</who><amt>$a</amt></big>|}
  in
  let results = Med_exec.run cat query in
  check int_t "three big orders" 3 (List.length results);
  check bool_t "matches reference" true (agree cat query)

let test_run_join_relational_with_xml () =
  let cat = make_catalog () in
  let query =
    q
      {|WHERE <row><item>$s</item><amount>$a</amount></row> IN "crm.orders",
             <product sku=$s><price>$p</price></product> IN "products.catalog"
        CONSTRUCT <line><sku>$s</sku><amt>$a</amt><unit>$p</unit></line>|}
  in
  let results = Med_exec.run cat query in
  check int_t "four priced orders" 4 (List.length results);
  check bool_t "matches reference" true (agree cat query)

let test_run_csv_source () =
  let cat = make_catalog () in
  let query =
    q
      {|WHERE <row><cust>$c</cust><email>$e</email></row> IN "legacy.contacts"
        CONSTRUCT <contact><c>$c</c><e>$e</e></contact>|}
  in
  check int_t "two contacts" 2 (List.length (Med_exec.run cat query));
  check bool_t "matches reference" true (agree cat query)

let test_run_order_limit () =
  let cat = make_catalog () in
  let query =
    q
      {|WHERE <row><amount>$a</amount></row> IN "crm.orders"
        CONSTRUCT <o>$a</o> ORDER BY $a DESC LIMIT 2|}
  in
  let results = Med_exec.run cat query in
  check (Alcotest.list string_t) "top amounts" [ "9000.0"; "250.0" ]
    (List.map Dtree.text results)

let test_run_element_as () =
  let cat = make_catalog () in
  let query =
    q
      {|WHERE <row><tier>"1"</tier></row> ELEMENT_AS $r IN "crm.customers"
        CONSTRUCT <kept>$r</kept>|}
  in
  let results = Med_exec.run cat query in
  check int_t "one tier-1 row" 1 (List.length results);
  check bool_t "matches reference" true (agree cat query)

let test_run_through_view () =
  let cat = make_catalog () in
  Med_catalog.define_view_text cat "west_customers" west_view_text;
  let query =
    q {|WHERE <customer><name>$n</name></customer> IN "west_customers" CONSTRUCT <w>$n</w>|}
  in
  let results = Med_exec.run cat query in
  check int_t "two west" 2 (List.length results);
  check bool_t "matches reference" true (agree cat query)

let test_run_view_over_view () =
  let cat = make_catalog () in
  Med_catalog.define_view_text cat "west_customers" west_view_text;
  Med_catalog.define_view_text cat "west_ids"
    {|WHERE <customer><id>$i</id></customer> IN "west_customers" CONSTRUCT <wid>$i</wid>|};
  let query = q {|WHERE <wid>$i</wid> IN "west_ids" CONSTRUCT <x>$i</x>|} in
  let results = Med_exec.run cat query in
  check int_t "two ids through two levels" 2 (List.length results);
  check bool_t "matches reference" true (agree cat query)

let test_union_view () =
  let cat = make_catalog () in
  (* One mediated schema integrating customers and contacts into a
     single <party> shape — the UNION the merger scenario needs. *)
  Med_catalog.define_view_text cat "parties"
    {|WHERE <row><name>$n</name></row> IN "crm.customers"
      CONSTRUCT <party src="crm">$n</party>
      UNION
      WHERE <row><cust>$n</cust></row> IN "legacy.contacts"
      CONSTRUCT <party src="legacy">$n</party>|};
  (match Med_catalog.find_view cat "parties" with
  | Some v -> check int_t "two definitions" 2 (List.length v.Med_catalog.definitions)
  | None -> Alcotest.fail "expected view");
  let query = q {|WHERE <party>$n</party> IN "parties" CONSTRUCT <p>$n</p>|} in
  let results = Med_exec.run cat query in
  check int_t "4 customers + 2 contacts" 6 (List.length results);
  check bool_t "matches reference" true (agree cat query);
  (* dependencies span both branches *)
  check (Alcotest.list string_t) "deps" [ "crm.customers"; "legacy.contacts" ]
    (Med_catalog.dependencies cat "parties")

let test_union_view_materializes () =
  let cat = make_catalog () in
  Med_catalog.define_view_text cat "parties"
    {|WHERE <row><name>$n</name></row> IN "crm.customers" CONSTRUCT <party>$n</party>
      UNION
      WHERE <row><cust>$n</cust></row> IN "legacy.contacts" CONSTRUCT <party>$n</party>|};
  let store = Mat_store.create cat in
  ignore (Mat_store.materialize store "parties");
  match Mat_store.lookup store "parties" with
  | Some trees -> check int_t "all six stored" 6 (List.length trees)
  | None -> Alcotest.fail "expected materialized union"

let test_run_correlated_subquery () =
  let cat = make_catalog () in
  let query =
    q
      {|WHERE <row><id>$i</id><name>$n</name></row> IN "crm.customers", $i <= 2
        CONSTRUCT <customer><name>$n</name>
          { WHERE <row><cust_id>$i</cust_id><item>$it</item></row> IN "crm.orders"
            CONSTRUCT <bought>$it</bought> }
        </customer>|}
  in
  let results = Med_exec.run cat query in
  check int_t "two customers" 2 (List.length results);
  let acme = List.hd results in
  check int_t "acme bought two items" 2 (List.length (Dtree.kids_named acme "bought"));
  check bool_t "matches reference" true (agree cat query)

let test_capability_fallback_agrees () =
  (* A relational source that rejects WHERE clauses: the mediator must
     fall back to shipping the table and filtering client-side, with the
     same answers. *)
  let cat = Med_catalog.create () in
  let cap = { Source.scan_only with Source.can_project = true } in
  Med_catalog.register_source cat (Rel_source.make_limited cap (make_crm ()));
  let query =
    q
      {|WHERE <row><name>$n</name><tier>$t</tier></row> IN "crm.customers", $t = 2
        CONSTRUCT <c>$n</c>|}
  in
  let results = Med_exec.run cat query in
  check int_t "two tier-2" 2 (List.length results);
  check bool_t "matches reference" true (agree cat query)

let test_partial_results_mode () =
  let cat = Med_catalog.create () in
  Med_catalog.register_source cat (Rel_source.make (make_crm ()));
  let down, _ =
    Net_sim.wrap { Net_sim.default_profile with Net_sim.availability = 0.0 }
      (Xml_source.of_xml_strings ~name:"products" [ ("catalog", catalog_xml) ])
  in
  Med_catalog.register_source cat down;
  let query =
    q
      {|WHERE <row><name>$n</name></row> IN "crm.customers"
        CONSTRUCT <c>$n</c>|}
  in
  (* Query touching only the live source is unaffected. *)
  let trees, skipped = Med_exec.run_partial cat query in
  check int_t "full answer" 4 (List.length trees);
  check int_t "nothing skipped" 0 (List.length skipped);
  (* A union-style query over both sources: partial mode answers from
     the live part and reports the dead one. *)
  let mixed =
    q
      {|WHERE <product sku=$s/> IN "products.catalog"
        CONSTRUCT <p>$s</p>|}
  in
  (try
     ignore (Med_exec.run cat mixed);
     Alcotest.fail "strict mode should fail"
   with Source.Unavailable _ | Alg_exec.Source_unavailable _ -> ());
  let trees, skipped = Med_exec.run_partial cat mixed in
  check int_t "empty but answered" 0 (List.length trees);
  check (Alcotest.list string_t) "annotated" [ "products" ] skipped

let test_pushdown_ships_fewer_tuples () =
  (* The mechanism behind experiment E3: with pushdown the source ships
     only matching rows; without it the whole table crosses the wire. *)
  let db = make_crm () in
  let wrapped, stats = Net_sim.wrap Net_sim.default_profile (Rel_source.make db) in
  let cat = Med_catalog.create () in
  Med_catalog.register_source cat wrapped;
  let query =
    q
      {|WHERE <row><name>$n</name><tier>$t</tier></row> IN "crm.customers", $t = 1
        CONSTRUCT <c>$n</c>|}
  in
  let r1 = Med_exec.run cat query in
  let pushed_tuples = stats.Net_sim.tuples_shipped in
  Net_sim.reset stats;
  let r2 = Med_exec.run ~opts:Med_sqlgen.no_pushdown cat query in
  let shipped_tuples = stats.Net_sim.tuples_shipped in
  check int_t "same answers" (List.length r1) (List.length r2);
  check bool_t "pushdown ships fewer" true (pushed_tuples < shipped_tuples);
  check int_t "pushdown ships exactly matches" 1 pushed_tuples

let test_join_pushdown_single_fragment () =
  let cat = make_catalog () in
  let compiled =
    Med_planner.compile cat
      (q
         {|WHERE <row><id>$i</id><name>$n</name></row> IN "crm.customers",
               <row><cust_id>$i</cust_id><amount>$a</amount></row> IN "crm.orders",
               $a > 100
           CONSTRUCT <big>$n</big>|})
  in
  (match compiled.Med_planner.accesses with
  | [ (_, Med_planner.A_sql_join { fragment; exports; _ }) ] ->
    check bool_t "single join fragment" true
      (contains fragment.Med_sqlgen.jf_sql_text "JOIN");
    check bool_t "join condition present" true
      (contains fragment.Med_sqlgen.jf_sql_text "t0.id = t1.cust_id");
    check bool_t "predicate pushed into fragment" true
      (contains fragment.Med_sqlgen.jf_sql_text "amount > 100");
    check (Alcotest.list string_t) "covers both tables" [ "customers"; "orders" ] exports
  | _ -> Alcotest.fail "expected one A_sql_join access");
  check int_t "no residual conditions" 0
    (List.length compiled.Med_planner.residual_conditions)

let test_join_pushdown_disabled_option () =
  let cat = make_catalog () in
  let compiled =
    Med_planner.compile ~opts:Med_sqlgen.no_join_pushdown cat
      (q
         {|WHERE <row><id>$i</id></row> IN "crm.customers",
               <row><cust_id>$i</cust_id></row> IN "crm.orders"
           CONSTRUCT <x>$i</x>|})
  in
  check int_t "two separate accesses" 2 (List.length compiled.Med_planner.accesses)

let test_join_pushdown_cross_product_refused () =
  (* Clauses over the same source with no shared variable must not be
     pushed as a cross product. *)
  let cat = make_catalog () in
  let compiled =
    Med_planner.compile cat
      (q
         {|WHERE <row><id>$i</id></row> IN "crm.customers",
               <row><oid>$o</oid></row> IN "crm.orders"
           CONSTRUCT <x><i>$i</i><o>$o</o></x>|})
  in
  check int_t "kept separate" 2 (List.length compiled.Med_planner.accesses)

let test_join_pushdown_not_for_limited_source () =
  let cat = Med_catalog.create () in
  let cap = { Source.full_capability with Source.can_join = false } in
  Med_catalog.register_source cat (Rel_source.make_limited cap (make_crm ()));
  let compiled =
    Med_planner.compile cat
      (q
         {|WHERE <row><id>$i</id></row> IN "crm.customers",
               <row><cust_id>$i</cust_id></row> IN "crm.orders"
           CONSTRUCT <x>$i</x>|})
  in
  check int_t "capability respected" 2 (List.length compiled.Med_planner.accesses)

let test_join_pushdown_results_agree () =
  let cat = make_catalog () in
  let query =
    q
      {|WHERE <row><id>$i</id><name>$n</name></row> IN "crm.customers",
             <row><cust_id>$i</cust_id><amount>$a</amount></row> IN "crm.orders",
             $a > 100
        CONSTRUCT <big><who>$n</who><amt>$a</amt></big>|}
  in
  check bool_t "pushed join matches reference" true (agree cat query);
  (* and the three-way variant (customers x orders x orders alias is not
     expressible; use element count instead) *)
  let results = Med_exec.run cat query in
  let separate = Med_exec.run ~opts:Med_sqlgen.no_join_pushdown cat query in
  check int_t "same answers with and without join pushdown" (List.length results)
    (List.length separate)

let test_order_limit_pushdown () =
  let db = make_crm () in
  let wrapped, stats = Net_sim.wrap Net_sim.default_profile (Rel_source.make db) in
  let cat = Med_catalog.create () in
  Med_catalog.register_source cat wrapped;
  let query =
    q
      {|WHERE <row><name>$n</name><tier>$t</tier></row> IN "crm.customers"
        CONSTRUCT <c>$n</c> ORDER BY $t DESC LIMIT 2|}
  in
  let compiled = Med_planner.compile cat query in
  (match compiled.Med_planner.accesses with
  | [ (_, Med_planner.A_sql { fragment; _ }) ] ->
    check bool_t "order shipped" true (contains fragment.Med_sqlgen.sql_text "ORDER BY");
    check bool_t "limit shipped" true (contains fragment.Med_sqlgen.sql_text "LIMIT 2")
  | _ -> Alcotest.fail "expected one SQL access");
  Net_sim.reset stats;
  let results = Med_exec.run cat query in
  check int_t "two results" 2 (List.length results);
  check int_t "only two tuples crossed the wire" 2 stats.Net_sim.tuples_shipped;
  check bool_t "order correct" true
    (List.map Dtree.text results = [ "Umbrella"; "Globex" ]
    || List.map Dtree.text results = [ "Umbrella"; "Initech" ])

(* Property: compiled pipeline agrees with the reference evaluator on
   random relational data for a fixed query family. *)
let prop_compiled_equals_reference =
  QCheck2.Test.make ~name:"compiled = reference on random data" ~count:40
    QCheck2.Gen.(pair (int_range 0 30) (int_range 0 50))
    (fun (ncust, nord) ->
      let g = Prng.create ((ncust * 131) + nord) in
      let db = Rel_db.create ~name:"crm" () in
      ignore (Rel_db.exec db "CREATE TABLE customers (id INT, name TEXT, tier INT)");
      ignore (Rel_db.exec db "CREATE TABLE orders (cust_id INT, amount INT)");
      for i = 1 to ncust do
        ignore
          (Rel_db.exec db
             (Printf.sprintf "INSERT INTO customers VALUES (%d, 'c%d', %d)" i
                (Prng.int g 5) (Prng.int g 4)))
      done;
      for _ = 1 to nord do
        ignore
          (Rel_db.exec db
             (Printf.sprintf "INSERT INTO orders VALUES (%d, %d)"
                (Prng.int_in g 1 (max 1 ncust)) (Prng.int g 1000)))
      done;
      let cat = Med_catalog.create () in
      Med_catalog.register_source cat (Rel_source.make db);
      let query =
        q
          {|WHERE <row><id>$i</id><tier>$t</tier></row> IN "crm.customers",
                 <row><cust_id>$i</cust_id><amount>$a</amount></row> IN "crm.orders",
                 $t >= 1, $a < 800
            CONSTRUCT <hit><i>$i</i><a>$a</a></hit>|}
      in
      agree cat query
      && agree ~opts:Med_sqlgen.no_pushdown cat query
      && agree ~opts:Med_sqlgen.no_join_pushdown cat query)

let () =
  let props = List.map QCheck_alcotest.to_alcotest [ prop_compiled_equals_reference ] in
  Alcotest.run "mediator"
    [
      ( "sources",
        [
          Alcotest.test_case "relational exports" `Quick test_rel_source_exports;
          Alcotest.test_case "relational sql" `Quick test_rel_source_sql;
          Alcotest.test_case "capability enforcement" `Quick test_rel_source_capability;
          Alcotest.test_case "xml path pushdown" `Quick test_xml_source_path;
          Alcotest.test_case "csv scan only" `Quick test_csv_source_scan;
          Alcotest.test_case "registry resolution" `Quick test_registry_resolution;
          Alcotest.test_case "net sim cost accounting" `Quick test_net_sim_costs;
          Alcotest.test_case "net sim unavailability" `Quick test_net_sim_unavailable;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "views and hierarchy" `Quick test_catalog_views;
          Alcotest.test_case "error cases" `Quick test_catalog_errors;
        ] );
      ( "compile",
        [
          Alcotest.test_case "sql pushdown" `Quick test_compile_pushes_sql;
          Alcotest.test_case "pushdown disabled" `Quick test_compile_no_pushdown_option;
          Alcotest.test_case "xml uses path preselection" `Quick test_compile_xml_uses_path;
          Alcotest.test_case "path pushdown ships fewer nodes" `Quick
            test_path_pushdown_ships_fewer_nodes;
          Alcotest.test_case "non-relational pattern falls back" `Quick
            test_compile_nested_pattern_falls_back;
          Alcotest.test_case "explain" `Quick test_explain_shows_fragments;
        ] );
      ( "execute",
        [
          Alcotest.test_case "select/project" `Quick test_run_select_project;
          Alcotest.test_case "two-table join" `Quick test_run_join_two_tables;
          Alcotest.test_case "relational x xml join" `Quick test_run_join_relational_with_xml;
          Alcotest.test_case "csv" `Quick test_run_csv_source;
          Alcotest.test_case "order/limit" `Quick test_run_order_limit;
          Alcotest.test_case "element_as" `Quick test_run_element_as;
          Alcotest.test_case "through a view" `Quick test_run_through_view;
          Alcotest.test_case "view over view" `Quick test_run_view_over_view;
          Alcotest.test_case "union view" `Quick test_union_view;
          Alcotest.test_case "union view materializes" `Quick test_union_view_materializes;
          Alcotest.test_case "correlated subquery" `Quick test_run_correlated_subquery;
          Alcotest.test_case "capability fallback" `Quick test_capability_fallback_agrees;
          Alcotest.test_case "partial results" `Quick test_partial_results_mode;
          Alcotest.test_case "pushdown ships fewer tuples" `Quick
            test_pushdown_ships_fewer_tuples;
        ] );
      ( "join-pushdown",
        [
          Alcotest.test_case "single fragment" `Quick test_join_pushdown_single_fragment;
          Alcotest.test_case "option disables" `Quick test_join_pushdown_disabled_option;
          Alcotest.test_case "cross product refused" `Quick
            test_join_pushdown_cross_product_refused;
          Alcotest.test_case "capability respected" `Quick
            test_join_pushdown_not_for_limited_source;
          Alcotest.test_case "results agree" `Quick test_join_pushdown_results_agree;
          Alcotest.test_case "order/limit pushdown" `Quick test_order_limit_pushdown;
        ]
        @ props );
    ]
